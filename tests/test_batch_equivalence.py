"""Batch query engine equivalence (the vectorized hot path's contract).

``KrigingEstimator.evaluate_batch`` must produce outcomes identical to an
equivalent sequence of ``evaluate`` calls: same values, same
simulate/interpolate decisions, same final cache contents.  Verified here
over two real workloads (FIR and SqueezeNet recorded trajectories — one
minplusone word-length problem, one descent sensitivity problem) plus
synthetic stress cases (variogram refitting, universal kriging,
max_neighbors caps).  The performance knobs layered on top — ``n_jobs``,
``backend`` (thread/process pools) and ``factor_cache`` (factorization
reuse) — must never change outcomes; each is exercised here against the
sequential reference.
"""

import numpy as np
import pytest

from repro.core.estimator import KrigingEstimator
from repro.experiments.registry import build_benchmark


def _make_pair(simulate, nv, **kwargs):
    return (
        KrigingEstimator(simulate, nv, **kwargs),
        KrigingEstimator(simulate, nv, **kwargs),
    )


def assert_equivalent(configs, simulate, nv, **kwargs):
    sequential, batched = _make_pair(simulate, nv, **kwargs)
    # Context-managed so a process-backend estimator's worker pool never
    # outlives its test.
    with sequential, batched:
        seq_out = [sequential.evaluate(config) for config in configs]
        bat_out = batched.evaluate_batch(configs)

    assert [o.interpolated for o in seq_out] == [o.interpolated for o in bat_out]
    assert [o.exact_hit for o in seq_out] == [o.exact_hit for o in bat_out]
    assert [o.n_neighbors for o in seq_out] == [o.n_neighbors for o in bat_out]
    np.testing.assert_allclose(
        [o.value for o in seq_out], [o.value for o in bat_out], rtol=1e-9, atol=1e-12
    )
    np.testing.assert_allclose(
        [o.variance for o in seq_out],
        [o.variance for o in bat_out],
        rtol=1e-6,
        atol=1e-9,
    )
    # Same cache contents, bit for bit (same configurations simulated, in
    # the same order, with the same measured values).
    np.testing.assert_array_equal(sequential.cache.points, batched.cache.points)
    np.testing.assert_array_equal(sequential.cache.values, batched.cache.values)
    # Same aggregate statistics.
    assert sequential.stats.n_simulated == batched.stats.n_simulated
    assert sequential.stats.n_interpolated == batched.stats.n_interpolated
    assert sequential.stats.n_exact_hits == batched.stats.n_exact_hits
    assert sequential.stats.neighbor_count_sum == batched.stats.neighbor_count_sum
    return seq_out


def _workload_configs(name):
    setup = build_benchmark(name, "small")
    trace = setup.record_trajectory()
    unique = trace.unique_first_visits()
    configs = np.asarray(unique.configurations, dtype=np.float64)
    truth = {tuple(c): float(v) for c, v in zip(configs.tolist(), unique.values)}

    def lookup(config):
        return truth[tuple(np.asarray(config, dtype=np.float64).tolist())]

    return configs, lookup


@pytest.mark.parametrize("name", ["fir", "squeezenet"])
@pytest.mark.parametrize("distance", [2, 3])
def test_workload_trajectory_equivalence(name, distance):
    """Acceptance check on two paper workloads' recorded trajectories."""
    configs, lookup = _workload_configs(name)
    outcomes = assert_equivalent(
        configs,
        lookup,
        configs.shape[1],
        distance=distance,
        nn_min=1,
        variogram="auto",
        min_fit_points=4,
        refit_interval=1,
    )
    assert any(o.interpolated for o in outcomes)
    assert any(not o.interpolated for o in outcomes)


@pytest.mark.parametrize("name", ["fir", "squeezenet"])
@pytest.mark.parametrize("n_jobs", [2, -1])
def test_workload_parallel_equivalence(name, n_jobs):
    """n_jobs > 1 must be decision- and value-identical to the sequential
    path on the paper workloads (the parallel acceptance suite)."""
    configs, lookup = _workload_configs(name)
    outcomes = assert_equivalent(
        configs,
        lookup,
        configs.shape[1],
        distance=3,
        nn_min=1,
        variogram="auto",
        min_fit_points=4,
        refit_interval=1,
        n_jobs=n_jobs,
    )
    assert any(o.interpolated for o in outcomes)


@pytest.mark.parametrize("factor_cache", [True, False])
def test_workload_equivalence_reuse_on_off(factor_cache):
    """The factorization-reuse layer is a pure performance knob: batch
    outcomes must match the sequential path with the cache on or off."""
    configs, lookup = _workload_configs("fir")
    outcomes = assert_equivalent(
        configs,
        lookup,
        configs.shape[1],
        distance=3,
        nn_min=1,
        variogram="auto",
        min_fit_points=4,
        refit_interval=1,
        factor_cache=factor_cache,
    )
    assert any(o.interpolated for o in outcomes)


def test_workload_process_backend_equivalence():
    """backend='process' must be decision- and value-identical to the
    sequential path (groups are shipped to worker processes as contiguous
    arrays; the fitted variogram models pickle)."""
    configs, lookup = _workload_configs("fir")
    outcomes = assert_equivalent(
        configs,
        lookup,
        configs.shape[1],
        distance=3,
        nn_min=1,
        variogram="auto",
        min_fit_points=4,
        refit_interval=1,
        n_jobs=2,
        backend="process",
    )
    assert any(o.interpolated for o in outcomes)


def test_process_backend_bitwise_matches_thread_backend():
    """Same chunking, same per-group arithmetic: the executor kind cannot
    change a bit of the output."""
    configs, lookup = _workload_configs("fir")
    nv = configs.shape[1]
    kwargs = dict(distance=3, variogram="auto", min_fit_points=4, refit_interval=1)
    results = {}
    for backend in ("thread", "process"):
        with KrigingEstimator(
            lookup, nv, n_jobs=2, backend=backend, factor_cache=False, **kwargs
        ) as estimator:
            results[backend] = estimator.evaluate_batch(configs)
    assert [o.value for o in results["thread"]] == [o.value for o in results["process"]]
    assert [o.variance for o in results["thread"]] == [
        o.variance for o in results["process"]
    ]


def test_invalid_backend_rejected():
    with pytest.raises(ValueError, match="backend"):
        KrigingEstimator(_smooth_field, 3, backend="greenlet")


@pytest.mark.parametrize("name", ["fir", "squeezenet"])
def test_parallel_batch_bitwise_matches_sequential_batch(name):
    """Group solves are scheduled, never re-ordered: n_jobs changes nothing,
    down to the last bit and the streamed distribution sketch."""
    configs, lookup = _workload_configs(name)
    nv = configs.shape[1]
    kwargs = dict(distance=3, variogram="auto", min_fit_points=4, refit_interval=1)
    serial = KrigingEstimator(lookup, nv, n_jobs=1, **kwargs)
    threaded = KrigingEstimator(lookup, nv, n_jobs=4, **kwargs)
    out_serial = serial.evaluate_batch(configs)
    out_threaded = threaded.evaluate_batch(configs)

    assert [o.value for o in out_serial] == [o.value for o in out_threaded]
    assert [o.variance for o in out_serial] == [o.variance for o in out_threaded]
    assert [o.interpolated for o in out_serial] == [o.interpolated for o in out_threaded]
    np.testing.assert_array_equal(serial.cache.points, threaded.cache.points)
    assert (
        serial.stats.neighbor_sketch.quantiles()
        == threaded.stats.neighbor_sketch.quantiles()
    )


def _smooth_field(config):
    c = np.asarray(config, dtype=float)
    coeffs = np.resize(np.array([1.0, -2.0, 0.5, 0.25]), c.size)
    return float(c @ coeffs + 3.0)


def test_equivalence_with_refitting_and_revisits():
    rng = np.random.default_rng(11)
    configs = rng.integers(2, 9, size=(150, 3)).astype(float)  # dense: revisits
    assert_equivalent(
        configs, _smooth_field, 3,
        distance=3, variogram="linear", min_fit_points=4, refit_interval=2,
    )


def test_equivalence_universal_interpolator():
    rng = np.random.default_rng(5)
    configs = rng.integers(2, 10, size=(80, 3)).astype(float)
    assert_equivalent(
        configs, _smooth_field, 3,
        distance=4, interpolator="universal", variogram="linear",
    )


def test_equivalence_with_max_neighbors():
    rng = np.random.default_rng(9)
    configs = rng.integers(0, 8, size=(120, 2)).astype(float)
    assert_equivalent(
        configs, _smooth_field, 2, distance=6, max_neighbors=3,
    )


def test_equivalence_with_max_variance_guard():
    """max_variance forces the sequential fallback — still equivalent."""
    rng = np.random.default_rng(13)
    configs = rng.integers(0, 10, size=(60, 2)).astype(float)
    assert_equivalent(
        configs, _smooth_field, 2, distance=5, max_variance=2.0,
    )


def test_batch_empty_and_validation():
    est = KrigingEstimator(_smooth_field, 3)
    assert est.evaluate_batch(np.empty((0, 3))) == []
    with pytest.raises(ValueError, match="shape"):
        est.evaluate_batch(np.zeros((4, 2)))


class TestProcessModelRef:
    """The worker-side variogram cache (fit-generation keyed) must neither
    change results nor re-pickle an unchanged model."""

    def test_ref_memoized_until_model_changes(self):
        from repro.core.models import ExponentialVariogram, LinearVariogram

        est = KrigingEstimator(
            _smooth_field, 3, n_jobs=2, backend="process", variogram="linear"
        )
        model = LinearVariogram(1.0)
        ref_a = est._process_model_ref(model)
        ref_b = est._process_model_ref(model)
        assert ref_a is ref_b  # pickled once per fitted model
        ref_c = est._process_model_ref(ExponentialVariogram(sill=1.0, range_=2.0))
        assert ref_c is not ref_a
        assert ref_c[0] > ref_a[0]  # fit generations are monotonic

    def test_thread_backend_never_builds_a_ref(self):
        est = KrigingEstimator(_smooth_field, 3, n_jobs=2, backend="thread")
        assert est._process_model_ref(est.variogram) is None

    def test_worker_cache_resolves_once_and_is_bounded(self):
        import pickle

        from repro.core import kriging
        from repro.core.models import LinearVariogram

        kriging._WORKER_MODELS.clear()
        key, blob = kriging.make_model_ref(LinearVariogram(2.0))
        first = kriging._resolve_model_ref(key, blob)
        second = kriging._resolve_model_ref(key, blob)
        assert second is first  # unpickled once per generation
        assert first == pickle.loads(blob)
        for _ in range(2 * kriging._WORKER_MODEL_LIMIT):
            extra_key, extra_blob = kriging.make_model_ref(LinearVariogram(3.0))
            kriging._resolve_model_ref(extra_key, extra_blob)
        assert len(kriging._WORKER_MODELS) <= kriging._WORKER_MODEL_LIMIT

    def test_grouped_solve_with_ref_bitwise(self):
        """model_ref is a dispatch knob only: grouped process solves return
        bit-identical results with and without it."""
        from repro.core.kriging import make_model_ref, ordinary_kriging_grouped
        from repro.core.models import ExponentialVariogram

        rng = np.random.default_rng(21)
        model = ExponentialVariogram(sill=9.0, range_=5.0)
        groups = []
        for _ in range(6):
            pts = rng.uniform(0.0, 8.0, size=(12, 3))
            vals = pts.sum(axis=1)
            queries = rng.uniform(0.0, 8.0, size=(4, 3))
            groups.append((pts, vals, queries))
        plain = ordinary_kriging_grouped(groups, model, n_jobs=2, backend="process")
        via_ref = ordinary_kriging_grouped(
            groups, model, n_jobs=2, backend="process", model_ref=make_model_ref(model)
        )
        assert [
            (r.estimate, r.variance) for results in plain for r in results
        ] == [(r.estimate, r.variance) for results in via_ref for r in results]

    def test_ref_rejected_for_mismatched_factors(self):
        from repro.core.kriging import ordinary_kriging_grouped
        from repro.core.models import LinearVariogram

        with pytest.raises(ValueError, match="factors length"):
            ordinary_kriging_grouped(
                [(np.zeros((2, 2)), np.zeros(2), np.zeros((1, 2)))],
                LinearVariogram(1.0),
                factors=[None, None],
            )


def test_shm_backend_bitwise_matches_pickled_process():
    """The shared-memory arena is a transport knob only: backend='process'
    with shm on and off answers bit-identically (workers rebuild the exact
    points[rows] gathers the pickled path would have shipped)."""
    from repro.core.shm import shm_available

    if not shm_available():
        pytest.skip("multiprocessing.shared_memory unavailable")
    configs, lookup = _workload_configs("fir")
    nv = configs.shape[1]
    kwargs = dict(distance=3, variogram="auto", min_fit_points=4, refit_interval=1)
    results = {}
    for shm in (True, False):
        with KrigingEstimator(
            lookup, nv, n_jobs=2, backend="process", shm=shm, **kwargs
        ) as estimator:
            results[shm] = estimator.evaluate_batch(configs)
            assert estimator._shm_enabled is shm  # never silently degraded
    assert [o.value for o in results[True]] == [o.value for o in results[False]]
    assert [o.variance for o in results[True]] == [o.variance for o in results[False]]


@pytest.mark.parametrize("shm", [False, True])
def test_shm_and_stacking_compose_bitwise(shm):
    """stacking x shm: every combination answers bit-identically to the
    serial non-stacked reference on the paper workload."""
    from repro.core.shm import shm_available

    if shm and not shm_available():
        pytest.skip("multiprocessing.shared_memory unavailable")
    configs, lookup = _workload_configs("fir")
    nv = configs.shape[1]
    kwargs = dict(distance=3, variogram="auto", min_fit_points=4, refit_interval=1)
    with KrigingEstimator(
        lookup, nv, n_jobs=1, stacking=False, **kwargs
    ) as reference:
        ref = reference.evaluate_batch(configs)
    with KrigingEstimator(
        lookup, nv, n_jobs=2, backend="process", shm=shm, stacking=True, **kwargs
    ) as estimator:
        out = estimator.evaluate_batch(configs)
    assert [o.interpolated for o in out] == [o.interpolated for o in ref]
    assert [o.value for o in out] == [o.value for o in ref]
    assert [o.variance for o in out] == [o.variance for o in ref]


@pytest.mark.parametrize("n_jobs", [1, 3])
def test_stacking_on_off_equivalence(n_jobs):
    """Stacked batched factorization is a pure performance knob at the
    estimator level: decisions and cache contents match the unstacked path
    bitwise, values bitwise too (same gesv arithmetic per stack slice)."""
    configs, lookup = _workload_configs("fir")
    nv = configs.shape[1]
    kwargs = dict(distance=3, variogram="auto", min_fit_points=4, refit_interval=1)
    results = {}
    for stacking in (True, False):
        with KrigingEstimator(
            lookup, nv, n_jobs=n_jobs, stacking=stacking,
            factor_cache=False, **kwargs
        ) as estimator:
            results[stacking] = estimator.evaluate_batch(configs)
            cache_points = estimator.cache.points
        results[(stacking, "cache")] = cache_points
    assert [o.value for o in results[True]] == [o.value for o in results[False]]
    assert [o.variance for o in results[True]] == [o.variance for o in results[False]]
    np.testing.assert_array_equal(
        results[(True, "cache")], results[(False, "cache")]
    )
