"""Unit tests for the benchmark harness core (:mod:`repro.bench`).

The gate layer is exercised over synthetic report pairs in BOTH
directions — a planted regression must fail, and a healthy pair must not
false-alarm — for each gate species: plain ratchets, invariant flags and
cpu-guarded metrics.  The runner, spec, report, provenance, history and
registry layers get direct unit coverage.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.bench.gates import (
    CLUSTER_MIN_CPUS,
    GATE_SETS,
    KNOWN_BENCHMARKS,
    compare,
    evaluate,
)
from repro.bench.history import (
    HISTORY_SCHEMA_VERSION,
    append_history,
    history_entry,
    read_history,
)
from repro.bench.provenance import experiment_dir, write_experiment
from repro.bench.registry import REGISTRY, get, listing, listing_json
from repro.bench.report import (
    REPORT_SCHEMA_VERSION,
    finalize_report,
    hardware_stamp,
    strip_private,
)
from repro.bench.runner import (
    LatencyStats,
    SampleLog,
    best_of,
    latency_summary,
    measure,
    paced_arrivals,
)
from repro.bench.spec import FaultScheduleSpec, LoadSpec, WorkloadSpec


# ---------------------------------------------------------------------------
# synthetic reports
# ---------------------------------------------------------------------------
def _cluster_report(speedup=1.8, cpus=8, bitwise=True, lost=0):
    return {
        "benchmark": "cluster",
        "hardware": {"cpus": cpus, "machine": "test"},
        "scenarios": {
            "single_worker": {"seconds": 1.0, "qps": 500.0},
            "two_workers": {"seconds": 0.6, "qps": 500.0 * speedup},
        },
        "migration": {"bitwise_preserved": bitwise, "seconds": 0.01},
        "failover": {
            "sessions_lost": lost,
            "all_sessions_answer": True,
            "detected_in_s": 0.1,
        },
        "equivalence_ok": True,
        "speedup_cluster_vs_single": speedup,
    }


def _chaos_report(qps=500.0, cpus=8, invariants_ok=True, seeds=3):
    seed_rows = {}
    for i in range(seeds):
        seed = 101 * (i + 1)
        seed_rows[f"seed{seed}"] = {
            "seed": seed,
            "seconds": 2.0,
            "qps": qps,
            "served": int(qps * 2),
            "invariants": {
                "no_call_outlives_deadline": True,
                "failures_structured": invariants_ok,
                "no_session_lost": True,
                "reconverged": True,
                "made_progress": True,
            },
            "invariants_ok": invariants_ok,
        }
    return {
        "benchmark": "chaos",
        "hardware": {"cpus": cpus, "machine": "test"},
        "scenarios": seed_rows,
        "qps_under_chaos": qps,
        "acceptance": {"seeds_run": seeds, "all_invariants_ok": invariants_ok},
    }


class TestClusterGates:
    def test_healthy_pair_no_false_alarm(self):
        report = _cluster_report()
        assert compare(report, report, factor=2.0) == []

    def test_scaling_floor_fails_on_multicore(self):
        failures = compare(
            _cluster_report(speedup=1.8), _cluster_report(speedup=1.1), factor=2.0
        )
        assert any("speedup_cluster_vs_single" in f for f in failures)

    def test_scaling_not_gated_on_single_core(self, capsys):
        failures = compare(
            _cluster_report(speedup=1.8, cpus=8),
            _cluster_report(speedup=0.9, cpus=1),
            factor=2.0,
        )
        assert failures == []
        assert "not gated" in capsys.readouterr().out

    def test_single_core_baseline_does_not_ratchet(self):
        # Floor still applies, but baseline/factor is ignored when the
        # baseline itself ran on one core.
        failures = compare(
            _cluster_report(speedup=0.9, cpus=1),
            _cluster_report(speedup=1.6, cpus=8),
            factor=2.0,
        )
        assert failures == []

    def test_migration_bitwise_flag(self):
        failures = compare(
            _cluster_report(), _cluster_report(bitwise=False), factor=2.0
        )
        assert any("bitwise_preserved" in f for f in failures)

    def test_sessions_lost_gate(self):
        failures = compare(_cluster_report(), _cluster_report(lost=2), factor=2.0)
        assert any("sessions_lost" in f for f in failures)

    def test_min_cpus_constant_guards_the_floor(self):
        below = CLUSTER_MIN_CPUS - 1
        failures = compare(
            _cluster_report(cpus=below), _cluster_report(speedup=0.5, cpus=below),
            factor=2.0,
        )
        assert failures == []


class TestChaosGates:
    def test_healthy_pair_no_false_alarm(self):
        report = _chaos_report()
        assert compare(report, report, factor=2.0) == []

    def test_invariant_violation_fails_everywhere(self):
        # Robustness invariants gate even on a single core.
        failures = compare(
            _chaos_report(cpus=1), _chaos_report(cpus=1, invariants_ok=False),
            factor=2.0,
        )
        assert any("invariants" in f for f in failures)

    def test_qps_gated_only_when_both_multicore(self, capsys):
        failures = compare(
            _chaos_report(qps=500.0, cpus=8), _chaos_report(qps=100.0, cpus=1),
            factor=2.0,
        )
        assert failures == []
        assert "not gated" in capsys.readouterr().out
        failures = compare(
            _chaos_report(qps=500.0, cpus=8), _chaos_report(qps=100.0, cpus=8),
            factor=2.0,
        )
        assert any("qps_under_chaos" in f for f in failures)

    def test_seed_coverage_cannot_shrink(self):
        failures = compare(_chaos_report(seeds=3), _chaos_report(seeds=1), factor=2.0)
        assert any("seeds_run" in f for f in failures)

    def test_empty_scenarios_fail(self):
        current = _chaos_report()
        current["scenarios"] = {}
        failures = compare(_chaos_report(), current, factor=2.0)
        assert any("no per-seed drills" in f for f in failures)


class TestGateEvaluate:
    def test_every_known_benchmark_has_a_gate_set(self):
        for kind in KNOWN_BENCHMARKS:
            assert kind in GATE_SETS

    def test_evaluate_returns_notes_and_failures(self):
        result = evaluate(
            _cluster_report(cpus=8), _cluster_report(speedup=0.9, cpus=1), factor=2.0
        )
        assert result.failures == []
        assert any("not gated" in note for note in result.notes)


class TestHistorySchema:
    def test_entry_stamped_with_schema_version_and_seed(self):
        report = finalize_report("cluster", _cluster_report(), seed=7)
        entry = history_entry(report, commit="abc")
        assert entry["schema_version"] == HISTORY_SCHEMA_VERSION
        assert entry["seed"] == 7

    def test_read_history_upgrades_legacy_lines(self, tmp_path):
        path = tmp_path / "history.jsonl"
        legacy = {"benchmark": "query_engine", "absolute_seconds": {"a": 1.0}}
        path.write_text(json.dumps(legacy) + "\n")
        append_history(path, finalize_report("cluster", _cluster_report(), seed=3))
        entries = list(read_history(path))
        assert entries[0]["schema_version"] == 1
        assert entries[0]["seed"] is None
        assert entries[1]["schema_version"] == HISTORY_SCHEMA_VERSION
        assert entries[1]["seed"] == 3

    def test_read_history_reports_bad_line(self, tmp_path):
        path = tmp_path / "history.jsonl"
        path.write_text('{"ok": 1}\n{nope\n')
        with pytest.raises(json.JSONDecodeError, match=r"history\.jsonl:2:"):
            list(read_history(path))


class TestReport:
    def test_finalize_stamps_schema_and_provenance(self):
        report = finalize_report("cluster", _cluster_report(cpus=2), seed=(1, 2))
        assert report["schema_version"] == REPORT_SCHEMA_VERSION
        assert report["seed"] == [1, 2]
        assert report["benchmark"] == "cluster"
        # The body's own cpu count is authoritative; the stamp fills the rest.
        assert report["hardware"]["cpus"] == 2
        assert report["hardware"]["python"]
        assert report["provenance"]["timestamp"].endswith("Z")
        assert report["provenance"]["harness"] == "repro.bench/2"

    def test_hardware_stamp_fields(self):
        stamp = hardware_stamp()
        assert stamp["cpus"] >= 1
        assert stamp["python"]

    def test_strip_private_removes_underscore_keys(self):
        body = {"a": 1, "_raw": [1, 2], "nested": {"_x": 0, "y": [{"_z": 1, "k": 2}]}}
        assert strip_private(body) == {"a": 1, "nested": {"y": [{"k": 2}]}}


class TestRunner:
    def test_measure_returns_best_and_result(self):
        seconds, value = measure(lambda: 42, repetitions=3)
        assert value == 42
        assert seconds >= 0.0

    def test_best_of_picks_minimum_key(self):
        calls = iter([3.0, 1.0, 2.0])
        row = best_of(3, lambda: {"seconds": next(calls)})
        assert row["seconds"] == 1.0

    def test_latency_stats_summary(self):
        stats = LatencyStats()
        for ms in range(1, 101):
            stats.update(ms / 1000.0)
        summary = stats.summary()
        assert summary["p50"] == pytest.approx(50.0, rel=0.1)
        assert summary["jitter"] == pytest.approx(summary["p99"] - summary["p50"])
        assert summary["max"] == pytest.approx(100.0)
        assert LatencyStats().summary() == {}

    def test_latency_summary_one_shot(self):
        summary = latency_summary([0.001, 0.002, 0.003])
        assert summary["mean"] == pytest.approx(2.0)

    def test_paced_arrivals_schedule(self):
        times = list(paced_arrivals(100.0, n_arrivals=5))
        assert times == pytest.approx([0.0, 0.01, 0.02, 0.03, 0.04])
        by_duration = list(paced_arrivals(10.0, duration_s=0.35))
        assert len(by_duration) == 4
        with pytest.raises(ValueError):
            list(paced_arrivals(10.0))

    def test_sample_log_records_and_times(self):
        log = SampleLog()
        log.record(0.5, label="a")
        with log.time(label="b"):
            pass
        rows = log.rows()
        assert [row["label"] for row in rows] == ["a", "b"]
        assert log.durations("a") == [0.5]
        assert all(row["t"] >= 0.0 for row in rows)


class TestSpec:
    def test_load_spec_validation(self):
        with pytest.raises(ValueError):
            LoadSpec(mode="bursty")
        with pytest.raises(ValueError):
            LoadSpec(mode="open")  # open-loop needs a rate
        assert LoadSpec(mode="open", rate_hz=10.0).rate_hz == 10.0

    def test_fault_schedule_draw_order_is_deterministic(self):
        schedule = FaultScheduleSpec(n_events=4, kinds=("reset", "blackhole"))
        a = [schedule.draw_event(random.Random(7), [0, 1, 2]) for _ in range(4)]
        b = [schedule.draw_event(random.Random(7), [0, 1, 2]) for _ in range(4)]
        assert a == b
        victim, kind, duration, gap = a[0]
        assert victim in (0, 1, 2)
        assert kind in ("reset", "blackhole")
        assert 0.25 <= duration <= 0.7
        assert 0.15 <= gap <= 0.4

    def test_quick_resolve_merges_overrides(self):
        spec = WorkloadSpec(
            name="x",
            kind="k",
            repetitions=3,
            params={"n": 100, "m": 5},
            quick={"n": 10, "repetitions": 1},
        )
        quick = spec.resolve(quick=True)
        assert quick.repetitions == 1
        assert quick.params == {"n": 10, "m": 5}
        assert spec.resolve(quick=False) is spec

    def test_to_config_is_json_safe(self):
        spec = WorkloadSpec(
            name="x",
            kind="k",
            seed=(1, 2),
            load=LoadSpec(mode="open", rate_hz=40.0),
            faults=FaultScheduleSpec(n_events=2, kinds=("reset",)),
        )
        config = spec.to_config()
        json.dumps(config)  # must not raise
        assert config["seed"] == [1, 2]
        assert config["load"]["mode"] == "open"
        assert config["faults"]["n_events"] == 2


class TestProvenance:
    def test_experiment_dir_dates_and_collides(self, tmp_path):
        first = experiment_dir(tmp_path, "service", date="2026-08-08")
        assert first.name == "service-2026-08-08"
        assert first.is_dir()
        second = experiment_dir(tmp_path, "service", date="2026-08-08")
        assert second.name == "service-2026-08-08-2"

    def test_write_experiment_layout(self, tmp_path):
        directory = tmp_path / "run-2026-08-08"
        report = finalize_report("cluster", _cluster_report(), seed=0)
        write_experiment(
            directory,
            report=report,
            config={"name": "cluster"},
            samples=[{"label": "a", "seconds": 0.1}],
        )
        assert json.loads((directory / "report.json").read_text())["benchmark"] == "cluster"
        assert json.loads((directory / "config.json").read_text())["name"] == "cluster"
        (line,) = (directory / "samples.jsonl").read_text().splitlines()
        assert json.loads(line)["label"] == "a"
        readme = (directory / "README.md").read_text()
        assert "check_regression" in readme
        # No slow traces captured: the file is not written at all.
        assert not (directory / "slow_traces.json").exists()

    def test_write_experiment_slow_traces(self, tmp_path):
        directory = tmp_path / "run-2026-08-08"
        trace = {
            "trace_id": "ab" * 16,
            "root": "server.dispatch",
            "duration_ms": 312.5,
            "threshold_ms": 250.0,
            "spans": [{"name": "server.dispatch"}],
        }
        write_experiment(
            directory,
            report=finalize_report("cluster", _cluster_report(), seed=0),
            config={"name": "cluster"},
            slow_traces=[trace],
        )
        (written,) = json.loads((directory / "slow_traces.json").read_text())
        assert written == trace
        assert "slow_traces.json" in (directory / "README.md").read_text()


class TestRegistry:
    def test_gated_subset_matches_known_benchmarks(self):
        gated = listing(gated_only=True)
        assert sorted(row["kind"] for row in gated) == sorted(KNOWN_BENCHMARKS)
        assert all(row["baseline"] for row in gated)

    def test_listing_json_single_line(self):
        payload = listing_json(gated_only=True)
        assert "\n" not in payload
        assert json.loads(payload)[0]["gated"] is True

    def test_unknown_name_is_helpful(self):
        with pytest.raises(KeyError, match="known:"):
            get("nope")

    def test_every_entry_has_a_spec(self):
        for name, definition in REGISTRY.items():
            spec = definition.load().get_spec(name)
            assert spec.kind
            json.dumps(spec.to_config())


class TestBenchCli:
    def test_list_gated_prints_matrix_payload(self, capsys):
        from repro.cli import main

        assert main(["bench", "--list", "--gated"]) == 0
        payload = capsys.readouterr().out.strip()
        rows = json.loads(payload)
        assert {row["name"] for row in rows} == {
            "query-engine", "solve", "service", "cluster", "chaos"
        }

    def test_unknown_benchmark_errors(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as exc:
            main(["bench", "definitely-not-a-bench"])
        assert exc.value.code == 2
        assert "known:" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# solve gates (zero-copy solve path)
# ---------------------------------------------------------------------------
def _solve_report(
    shm_speedup=1.6, stacked_speedup=1.5, warm_speedup=5.0,
    warm_fresh=0, cpus=8, shm_skipped=False,
):
    shm = (
        {"skipped": True, "reason": "shared_memory unavailable"}
        if shm_skipped
        else {
            "n_groups": 256,
            "speedup_shm_vs_pickled": shm_speedup,
            "bitwise_equal": True,
        }
    )
    return {
        "benchmark": "solve",
        "hardware": {"cpus": cpus, "machine": "test"},
        "shm": shm,
        "stacked": {
            "n_groups": 120,
            "speedup_stacked_vs_pergroup": stacked_speedup,
            "bitwise_equal": True,
        },
        "warm_restore": {
            "speedup_warm_vs_cold": warm_speedup,
            "warm_fresh_factorizations": warm_fresh,
            "cold_fresh_factorizations": 10,
        },
    }


class TestSolveGates:
    def test_healthy_pair_no_false_alarm(self):
        report = _solve_report()
        assert compare(report, report, factor=2.0) == []

    def test_shm_floor_fails_on_multicore(self):
        failures = compare(
            _solve_report(), _solve_report(shm_speedup=1.1), factor=2.0
        )
        assert any("shm.speedup_shm_vs_pickled" in f for f in failures)

    def test_stacked_floor_fails_on_multicore(self):
        failures = compare(
            _solve_report(), _solve_report(stacked_speedup=0.9), factor=2.0
        )
        assert any("stacked.speedup_stacked_vs_pergroup" in f for f in failures)

    def test_ratios_not_gated_on_single_core(self, capsys):
        failures = compare(
            _solve_report(),
            _solve_report(shm_speedup=0.8, stacked_speedup=0.7, cpus=1),
            factor=2.0,
        )
        assert failures == []
        assert "not gated" in capsys.readouterr().out

    def test_skipped_shm_section_noted_never_gated(self, capsys):
        failures = compare(
            _solve_report(), _solve_report(shm_skipped=True), factor=2.0
        )
        assert failures == []
        assert "skipped by the current run" in capsys.readouterr().out

    def test_skipped_baseline_section_still_floors_current(self):
        # A baseline from a no-shm platform must not weaken the floor.
        failures = compare(
            _solve_report(shm_skipped=True), _solve_report(shm_speedup=1.1),
            factor=2.0,
        )
        assert any("shm.speedup_shm_vs_pickled" in f for f in failures)

    def test_warm_refactorization_fails_on_any_hardware(self):
        failures = compare(
            _solve_report(), _solve_report(warm_fresh=3, cpus=1), factor=2.0
        )
        assert any("warm_fresh_factorizations" in f for f in failures)

    def test_warm_speedup_ratchets(self):
        failures = compare(
            _solve_report(warm_speedup=6.0), _solve_report(warm_speedup=1.5),
            factor=2.0,
        )
        assert any("speedup_warm_vs_cold" in f for f in failures)

    def test_query_engine_report_carries_solve_ratios(self):
        """The reduced-scale shm/stacked sections embedded in the
        query-engine report gate through the same guarded specs."""
        from repro.bench.gates import GATE_SETS, GuardedRatchetGate

        sections = {
            gate.section
            for gate in GATE_SETS["query_engine"]
            if isinstance(gate, GuardedRatchetGate)
        }
        assert {"shm", "stacked"} <= sections
