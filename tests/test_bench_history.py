"""Tests for the benchmark regression gate's reuse fields and timing history.

``benchmarks/`` is not a package; the module under test is loaded straight
from its file path, exactly as CI invokes it.
"""

import importlib.util
import json
import pathlib

import pytest

_MODULE_PATH = (
    pathlib.Path(__file__).resolve().parent.parent / "benchmarks" / "check_regression.py"
)
_spec = importlib.util.spec_from_file_location("check_regression", _MODULE_PATH)
check_regression = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_regression)


def _report(reuse_speedup=3.0, batch_speedup=8.0):
    return {
        "benchmark": "query_engine",
        "results": [
            {
                "n_support": 2000,
                "seed_seconds": 2.5,
                "evaluate_batch_seconds": 0.3,
                "speedup_evaluate_vs_seed": 4.0,
                "speedup_batch_vs_seed": batch_speedup,
            }
        ],
        "l2_index": {
            "query_brute_seconds": 0.17,
            "query_kdtree_seconds": 0.11,
            "speedup_kdtree_vs_brute": 1.5,
        },
        "parallel": {"serial_seconds": 0.3, "parallel_seconds": 0.3},
        "reuse": {
            "reuse_fresh_seconds": 7.0,
            "reuse_cached_seconds": 7.0 / reuse_speedup,
            "speedup_reuse_vs_fresh": reuse_speedup,
        },
        "shm": {
            "pickled_seconds": 0.42,
            "shm_seconds": 0.30,
            "speedup_shm_vs_pickled": 1.4,
        },
        "stacked": {
            "pergroup_seconds": 0.40,
            "stacked_seconds": 0.30,
            "speedup_stacked_vs_pergroup": 1.33,
        },
    }


class TestReuseGate:
    def test_healthy_run_passes(self):
        assert check_regression.compare(_report(), _report(), factor=2.0) == []

    def test_reuse_regression_fails(self):
        failures = check_regression.compare(
            _report(reuse_speedup=3.0), _report(reuse_speedup=1.2), factor=2.0
        )
        assert any("reuse.speedup_reuse_vs_fresh" in f for f in failures)

    def test_baseline_without_reuse_section_tolerated(self):
        """Older baselines predate the reuse section: no gate, no crash."""
        baseline = _report()
        del baseline["reuse"]
        assert check_regression.compare(baseline, _report(), factor=2.0) == []


class TestHistory:
    def test_entry_collects_seconds_and_ratios(self):
        entry = check_regression.history_entry(_report(), commit="abc123")
        assert entry["commit"] == "abc123"
        assert entry["machine"]["python"]
        assert entry["absolute_seconds"]["n2000.seed_seconds"] == 2.5
        assert entry["absolute_seconds"]["reuse.reuse_fresh_seconds"] == 7.0
        assert entry["ratios"]["n2000.speedup_batch_vs_seed"] == 8.0
        assert entry["ratios"]["reuse.speedup_reuse_vs_fresh"] == 3.0

    def test_append_creates_and_extends_jsonl(self, tmp_path):
        history = tmp_path / "BENCH_history.jsonl"
        check_regression.append_history(history, _report(), commit="one")
        check_regression.append_history(history, _report(), commit="two")
        lines = [json.loads(line) for line in history.read_text().splitlines()]
        assert [line["commit"] for line in lines] == ["one", "two"]
        assert all(line["benchmark"] == "query_engine" for line in lines)

    def test_cli_appends_history(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        current = tmp_path / "current.json"
        history = tmp_path / "history.jsonl"
        baseline.write_text(json.dumps(_report()))
        current.write_text(json.dumps(_report()))
        code = check_regression.main(
            [
                str(baseline),
                str(current),
                "--history",
                str(history),
                "--commit",
                "deadbeef",
            ]
        )
        assert code == 0
        assert "history: appended" in capsys.readouterr().out
        (line,) = history.read_text().splitlines()
        assert json.loads(line)["commit"] == "deadbeef"

    def test_committed_history_is_valid_jsonl(self):
        committed = _MODULE_PATH.parent.parent / "BENCH_history.jsonl"
        lines = committed.read_text().splitlines()
        assert lines, "seed history line missing"
        for line in lines:
            entry = json.loads(line)
            # Both benchmark kinds append to the one history file.
            assert entry["benchmark"] in check_regression.KNOWN_BENCHMARKS
            assert entry["absolute_seconds"]


class TestGateStillRejectsMalformed:
    def test_malformed_current(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(_report()))
        broken = tmp_path / "broken.json"
        broken.write_text("{nope")
        assert check_regression.main([str(baseline), str(broken)]) == 2

    def test_factor_must_exceed_one(self, tmp_path):
        baseline = tmp_path / "b.json"
        baseline.write_text(json.dumps(_report()))
        with pytest.raises(SystemExit):
            check_regression.main([str(baseline), str(baseline), "--factor", "0.5"])


def _service_report(speedup=1.6, bitwise=True):
    return {
        "benchmark": "service",
        "scenarios": {
            "sequential": {
                "n_queries": 1280,
                "seconds": 1.6,
                "qps": 800.0,
                "latency_ms": {"p50": 1.2, "p90": 1.5, "p99": 2.4, "max": 9.0},
            },
            "concurrent_batched": {
                "n_queries": 1280,
                "seconds": 1.0,
                "qps": 800.0 * speedup,
                "latency_ms": {"p50": 6.0, "p90": 8.0, "p99": 11.0, "max": 20.0},
            },
        },
        "snapshot": {"roundtrip_bitwise": bitwise, "cache_size": 1500},
        "speedup_batched_vs_sequential": speedup,
        "speedup_batched_vs_unbatched": 1.4,
    }


class TestServiceGate:
    def test_healthy_service_run_passes(self):
        report = _service_report()
        assert check_regression.compare(report, report, factor=2.0) == []

    def test_service_regression_fails(self):
        failures = check_regression.compare(
            _service_report(speedup=1.6), _service_report(speedup=0.5), factor=2.0
        )
        assert any("speedup_batched_vs_sequential" in f for f in failures)

    def test_unbatched_ratio_not_gated(self):
        current = _service_report()
        current["speedup_batched_vs_unbatched"] = 0.1  # recorded, not gated
        assert check_regression.compare(_service_report(), current, factor=2.0) == []

    def test_broken_snapshot_roundtrip_fails(self):
        failures = check_regression.compare(
            _service_report(), _service_report(bitwise=False), factor=2.0
        )
        assert any("roundtrip_bitwise" in f for f in failures)

    def test_mismatched_kinds_rejected_by_cli(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        current = tmp_path / "current.json"
        baseline.write_text(json.dumps(_service_report()))
        current.write_text(json.dumps(_report()))
        assert check_regression.main([str(baseline), str(current)]) == 2

    def test_unknown_benchmark_kind_rejected(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"benchmark": "mystery"}))
        assert check_regression.main([str(baseline), str(baseline)]) == 2

    def test_service_cli_gate_passes(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(_service_report()))
        assert check_regression.main([str(baseline), str(baseline)]) == 0
        assert "smoke OK" in capsys.readouterr().out


class TestServiceHistory:
    def test_entry_collects_scenarios_and_ratios(self):
        entry = check_regression.history_entry(_service_report(), commit="svc1")
        absolute = entry["absolute_seconds"]
        assert absolute["scenarios.sequential.seconds"] == 1.6
        assert absolute["scenarios.sequential.qps"] == 800.0
        assert absolute["scenarios.concurrent_batched.latency_ms.p99"] == 11.0
        assert entry["ratios"]["speedup_batched_vs_sequential"] == 1.6
        assert entry["ratios"]["speedup_batched_vs_unbatched"] == 1.4
        assert entry["benchmark"] == "service"

    def test_committed_service_baseline_is_gateable(self):
        committed = _MODULE_PATH.parent.parent / "BENCH_service.json"
        report = json.loads(committed.read_text())
        assert report["benchmark"] == "service"
        assert check_regression.compare(report, report, factor=2.0) == []
        assert report["acceptance"]["passed"] is True
        assert (
            report["acceptance"]["speedup_batched_vs_sequential"]
            >= report["acceptance"]["threshold"]
        )
        entry = check_regression.history_entry(report)
        assert entry["absolute_seconds"] and entry["ratios"]


class TestServiceGateStrictness:
    def test_current_dropping_gated_ratio_fails(self):
        current = _service_report()
        del current["speedup_batched_vs_sequential"]
        failures = check_regression.compare(_service_report(), current, factor=2.0)
        assert any("missing from the current report" in f for f in failures)

    def test_current_dropping_snapshot_section_fails(self):
        current = _service_report()
        del current["snapshot"]
        failures = check_regression.compare(_service_report(), current, factor=2.0)
        assert any("snapshot: section missing" in f for f in failures)

    def test_older_baseline_without_fields_tolerated(self):
        baseline = {"benchmark": "service", "scenarios": {}}
        assert check_regression.compare(baseline, _service_report(), factor=2.0) == []
