"""Tests for the benchmark regression gate's reuse fields and timing history.

``benchmarks/`` is not a package; the module under test is loaded straight
from its file path, exactly as CI invokes it.
"""

import importlib.util
import json
import pathlib

import pytest

_MODULE_PATH = (
    pathlib.Path(__file__).resolve().parent.parent / "benchmarks" / "check_regression.py"
)
_spec = importlib.util.spec_from_file_location("check_regression", _MODULE_PATH)
check_regression = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_regression)


def _report(reuse_speedup=3.0, batch_speedup=8.0):
    return {
        "benchmark": "query_engine",
        "results": [
            {
                "n_support": 2000,
                "seed_seconds": 2.5,
                "evaluate_batch_seconds": 0.3,
                "speedup_evaluate_vs_seed": 4.0,
                "speedup_batch_vs_seed": batch_speedup,
            }
        ],
        "l2_index": {
            "query_brute_seconds": 0.17,
            "query_kdtree_seconds": 0.11,
            "speedup_kdtree_vs_brute": 1.5,
        },
        "parallel": {"serial_seconds": 0.3, "parallel_seconds": 0.3},
        "reuse": {
            "reuse_fresh_seconds": 7.0,
            "reuse_cached_seconds": 7.0 / reuse_speedup,
            "speedup_reuse_vs_fresh": reuse_speedup,
        },
    }


class TestReuseGate:
    def test_healthy_run_passes(self):
        assert check_regression.compare(_report(), _report(), factor=2.0) == []

    def test_reuse_regression_fails(self):
        failures = check_regression.compare(
            _report(reuse_speedup=3.0), _report(reuse_speedup=1.2), factor=2.0
        )
        assert any("reuse.speedup_reuse_vs_fresh" in f for f in failures)

    def test_baseline_without_reuse_section_tolerated(self):
        """Older baselines predate the reuse section: no gate, no crash."""
        baseline = _report()
        del baseline["reuse"]
        assert check_regression.compare(baseline, _report(), factor=2.0) == []


class TestHistory:
    def test_entry_collects_seconds_and_ratios(self):
        entry = check_regression.history_entry(_report(), commit="abc123")
        assert entry["commit"] == "abc123"
        assert entry["machine"]["python"]
        assert entry["absolute_seconds"]["n2000.seed_seconds"] == 2.5
        assert entry["absolute_seconds"]["reuse.reuse_fresh_seconds"] == 7.0
        assert entry["ratios"]["n2000.speedup_batch_vs_seed"] == 8.0
        assert entry["ratios"]["reuse.speedup_reuse_vs_fresh"] == 3.0

    def test_append_creates_and_extends_jsonl(self, tmp_path):
        history = tmp_path / "BENCH_history.jsonl"
        check_regression.append_history(history, _report(), commit="one")
        check_regression.append_history(history, _report(), commit="two")
        lines = [json.loads(line) for line in history.read_text().splitlines()]
        assert [line["commit"] for line in lines] == ["one", "two"]
        assert all(line["benchmark"] == "query_engine" for line in lines)

    def test_cli_appends_history(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        current = tmp_path / "current.json"
        history = tmp_path / "history.jsonl"
        baseline.write_text(json.dumps(_report()))
        current.write_text(json.dumps(_report()))
        code = check_regression.main(
            [
                str(baseline),
                str(current),
                "--history",
                str(history),
                "--commit",
                "deadbeef",
            ]
        )
        assert code == 0
        assert "history: appended" in capsys.readouterr().out
        (line,) = history.read_text().splitlines()
        assert json.loads(line)["commit"] == "deadbeef"

    def test_committed_history_is_valid_jsonl(self):
        committed = _MODULE_PATH.parent.parent / "BENCH_history.jsonl"
        lines = committed.read_text().splitlines()
        assert lines, "seed history line missing"
        for line in lines:
            entry = json.loads(line)
            assert entry["benchmark"] == "query_engine"
            assert entry["absolute_seconds"]


class TestGateStillRejectsMalformed:
    def test_malformed_current(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(_report()))
        broken = tmp_path / "broken.json"
        broken.write_text("{nope")
        assert check_regression.main([str(baseline), str(broken)]) == 2

    def test_factor_must_exceed_one(self, tmp_path):
        baseline = tmp_path / "b.json"
        baseline.write_text(json.dumps(_report()))
        with pytest.raises(SystemExit):
            check_regression.main([str(baseline), str(baseline), "--factor", "0.5"])
