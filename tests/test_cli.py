"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table1_defaults(self):
        args = build_parser().parse_args(["table1", "fir"])
        assert args.benchmark == "fir"
        assert args.scale == "small"
        assert args.distances == [2, 3, 4, 5]

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "wavelet"])

    def test_extra_benchmark_accepted(self):
        args = build_parser().parse_args(["table1", "dct"])
        assert args.benchmark == "dct"


class TestCommands:
    def test_benchmarks_listing(self, capsys):
        assert main(["benchmarks"]) == 0
        out = capsys.readouterr().out
        for name in ("fir", "iir", "fft", "hevc", "squeezenet"):
            assert name in out
        assert "Nv=23" in out

    def test_figure1_small(self, capsys):
        assert main(["figure1", "--min-wl", "8", "--max-wl", "11", "--samples", "128"]) == 0
        out = capsys.readouterr().out
        assert "w_mul" in out
        assert len(out.splitlines()) == 5

    def test_figure1_bad_range(self, capsys):
        assert main(["figure1", "--min-wl", "12", "--max-wl", "8"]) == 2

    def test_table1_fir_small(self, capsys):
        assert main(["table1", "fir", "--distances", "2", "3"]) == 0
        out = capsys.readouterr().out
        assert "fir" in out
        assert "p(%)" in out

    def test_record_and_replay_roundtrip(self, tmp_path, capsys):
        path = tmp_path / "fir.json"
        assert main(["record", "fir", str(path)]) == 0
        assert path.exists()
        capsys.readouterr()
        assert main(["replay", str(path), "--distance", "3"]) == 0
        out = capsys.readouterr().out
        assert "p=" in out
        assert "mu_eps=" in out


class TestBackendOption:
    def test_backend_default_thread(self):
        args = build_parser().parse_args(["replay", "trace.json"])
        assert args.backend == "thread"

    def test_backend_process_accepted(self):
        for command in (["replay", "trace.json"], ["table1", "fir"]):
            args = build_parser().parse_args([*command, "--backend", "process"])
            assert args.backend == "process"

    def test_backend_unknown_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["replay", "t.json", "--backend", "greenlet"])


class TestServiceParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.port == 7331
        assert args.snapshot_dir is None
        assert args.max_batch == 64
        assert args.max_delay_ms == 2.0

    def test_serve_ephemeral_port_and_dirs(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--port-file", "/tmp/p", "--snapshot-dir", "/tmp/s"]
        )
        assert args.port == 0
        assert args.port_file == "/tmp/p"
        assert args.snapshot_dir == "/tmp/s"

    def test_client_eval_parses_values(self):
        args = build_parser().parse_args(
            ["client", "--port", "9999", "eval", "mysession", "1", "2.5", "3"]
        )
        assert args.verb == "eval"
        assert args.session == "mysession"
        assert args.values == [1.0, 2.5, 3.0]

    def test_client_create_simulator_json(self):
        args = build_parser().parse_args(
            ["client", "create", "s", "--num-variables", "4", "--simulator",
             '{"kind": "quadratic"}']
        )
        assert args.verb == "create"
        assert args.num_variables == 4

    def test_client_requires_verb(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["client"])

    def test_client_unreachable_server_fails_cleanly(self, capsys):
        # A port from the ephemeral range with (almost surely) no listener.
        assert main(["client", "--port", "1", "eval", "s", "1"]) == 1
        assert "cannot reach service" in capsys.readouterr().err

    def test_client_bad_simulator_json(self, capsys):
        import json
        import socket
        import threading

        # A throwaway listener so the connection itself succeeds.
        listener = socket.create_server(("127.0.0.1", 0))
        port = listener.getsockname()[1]

        def accept_once():
            try:
                listener.accept()
            except OSError:
                pass  # closed from the main thread before/while accepting

        thread = threading.Thread(target=accept_once, daemon=True)
        thread.start()
        try:
            code = main(
                ["client", "--port", str(port), "create", "s", "--simulator", "{bad"]
            )
        finally:
            listener.close()
        assert code == 2
        assert "not valid JSON" in capsys.readouterr().err


class TestServiceLive:
    def test_serve_and_client_roundtrip(self, tmp_path, capsys):
        """The full CLI wiring: a served session answers `repro client`."""
        import asyncio
        import json
        import threading

        from repro.service.server import KrigingService

        service = KrigingService(snapshot_dir=tmp_path)
        ready = threading.Event()

        def run():
            asyncio.run(
                service.serve(
                    "127.0.0.1", 0, on_ready=lambda host, port: ready.set()
                )
            )

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        assert ready.wait(10)
        assert service.address is not None
        port = str(service.address[1])

        assert main(
            ["client", "--port", port, "create", "live",
             "--num-variables", "2", "--simulator", '{"kind": "linear"}']
        ) == 0
        assert main(["client", "--port", port, "simulate", "live", "1", "2"]) == 0
        assert main(["client", "--port", port, "simulate", "live", "2", "2"]) == 0
        capsys.readouterr()  # drop the accumulated create/simulate output
        assert main(["client", "--port", port, "eval", "live", "1.5", "2"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["interpolated"] is True
        assert main(["client", "--port", port, "snapshot", "live"]) == 0
        assert main(["client", "--port", port, "stats"]) == 0
        assert main(["client", "--port", port, "shutdown"]) == 0
        thread.join(timeout=10)
        assert not thread.is_alive()
