"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table1_defaults(self):
        args = build_parser().parse_args(["table1", "fir"])
        assert args.benchmark == "fir"
        assert args.scale == "small"
        assert args.distances == [2, 3, 4, 5]

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "wavelet"])

    def test_extra_benchmark_accepted(self):
        args = build_parser().parse_args(["table1", "dct"])
        assert args.benchmark == "dct"


class TestCommands:
    def test_benchmarks_listing(self, capsys):
        assert main(["benchmarks"]) == 0
        out = capsys.readouterr().out
        for name in ("fir", "iir", "fft", "hevc", "squeezenet"):
            assert name in out
        assert "Nv=23" in out

    def test_figure1_small(self, capsys):
        assert main(["figure1", "--min-wl", "8", "--max-wl", "11", "--samples", "128"]) == 0
        out = capsys.readouterr().out
        assert "w_mul" in out
        assert len(out.splitlines()) == 5

    def test_figure1_bad_range(self, capsys):
        assert main(["figure1", "--min-wl", "12", "--max-wl", "8"]) == 2

    def test_table1_fir_small(self, capsys):
        assert main(["table1", "fir", "--distances", "2", "3"]) == 0
        out = capsys.readouterr().out
        assert "fir" in out
        assert "p(%)" in out

    def test_record_and_replay_roundtrip(self, tmp_path, capsys):
        path = tmp_path / "fir.json"
        assert main(["record", "fir", str(path)]) == 0
        assert path.exists()
        capsys.readouterr()
        assert main(["replay", str(path), "--distance", "3"]) == 0
        out = capsys.readouterr().out
        assert "p=" in out
        assert "mu_eps=" in out


class TestBackendOption:
    def test_backend_default_thread(self):
        args = build_parser().parse_args(["replay", "trace.json"])
        assert args.backend == "thread"

    def test_backend_process_accepted(self):
        for command in (["replay", "trace.json"], ["table1", "fir"]):
            args = build_parser().parse_args([*command, "--backend", "process"])
            assert args.backend == "process"

    def test_backend_unknown_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["replay", "t.json", "--backend", "greenlet"])
