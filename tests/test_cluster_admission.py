"""Admission control: caps, FIFO queueing, structured rejection, loss."""

import asyncio

import pytest

from repro.cluster.admission import AdmissionController, Overloaded, WorkerLost


def run(coro):
    return asyncio.run(coro)


class TestValidation:
    def test_bad_limits_rejected(self):
        with pytest.raises(ValueError):
            AdmissionController(max_inflight=0)
        with pytest.raises(ValueError):
            AdmissionController(max_queue=-1)

    def test_release_without_acquire(self):
        async def body():
            ctl = AdmissionController()
            with pytest.raises(RuntimeError):
                ctl.release("w0")

        run(body())


class TestCapAndQueue:
    def test_under_cap_admits_immediately(self):
        async def body():
            ctl = AdmissionController(max_inflight=2, max_queue=0)
            await ctl.acquire("w0")
            await ctl.acquire("w0")
            assert ctl.inflight("w0") == 2
            ctl.release("w0")
            ctl.release("w0")
            assert ctl.inflight("w0") == 0

        run(body())

    def test_per_worker_isolation(self):
        async def body():
            ctl = AdmissionController(max_inflight=1, max_queue=0)
            await ctl.acquire("w0")
            await ctl.acquire("w1")  # w1's cap is its own
            assert ctl.inflight("w0") == ctl.inflight("w1") == 1

        run(body())

    def test_beyond_cap_and_queue_rejects_with_hint(self):
        async def body():
            ctl = AdmissionController(max_inflight=1, max_queue=0)
            await ctl.acquire("w0")
            with pytest.raises(Overloaded) as err:
                await ctl.acquire("w0")
            assert err.value.worker == "w0"
            assert err.value.retry_after_ms >= ctl.RETRY_HINT_MS
            assert ctl.stats()["rejected"] == 1

        run(body())

    def test_queue_admits_fifo(self):
        async def body():
            ctl = AdmissionController(max_inflight=1, max_queue=4)
            await ctl.acquire("w0")
            order = []

            async def waiter(tag):
                await ctl.acquire("w0")
                order.append(tag)

            tasks = [asyncio.create_task(waiter(i)) for i in range(3)]
            await asyncio.sleep(0.01)
            assert ctl.waiting("w0") == 3
            for _ in range(3):
                ctl.release("w0")
                await asyncio.sleep(0.01)
            await asyncio.gather(*tasks)
            assert order == [0, 1, 2]  # oldest waiter first, no stampede
            assert ctl.inflight("w0") == 1  # the last waiter still holds it

        run(body())

    def test_deeper_queue_means_longer_hint(self):
        ctl = AdmissionController(max_inflight=4, max_queue=100)
        assert ctl.retry_hint_ms(40) > ctl.retry_hint_ms(4) > 0


class TestCancellationAndLoss:
    def test_cancelled_waiter_leaves_the_queue(self):
        async def body():
            ctl = AdmissionController(max_inflight=1, max_queue=4)
            await ctl.acquire("w0")
            task = asyncio.create_task(ctl.acquire("w0"))
            await asyncio.sleep(0.01)
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task
            assert ctl.waiting("w0") == 0
            ctl.release("w0")
            assert ctl.inflight("w0") == 0  # the slot was freed, not leaked

        run(body())

    def test_forget_fails_waiters_fast(self):
        async def body():
            ctl = AdmissionController(max_inflight=1, max_queue=4)
            await ctl.acquire("w0")
            tasks = [asyncio.create_task(ctl.acquire("w0")) for _ in range(2)]
            await asyncio.sleep(0.01)
            ctl.forget("w0")
            for task in tasks:
                with pytest.raises(WorkerLost):
                    await task
            ctl.forget("w0")  # idempotent

        run(body())

    def test_release_after_forget_is_absorbed(self):
        """Slots held by in-flight requests when the worker is forgotten
        release without raising (regression: the release raised
        RuntimeError, masking the connection error being propagated)."""

        async def body():
            ctl = AdmissionController(max_inflight=2, max_queue=0)
            await ctl.acquire("w0")
            await ctl.acquire("w0")
            ctl.forget("w0")
            ctl.release("w0")  # the in-flight requests unwind quietly
            ctl.release("w0")
            with pytest.raises(RuntimeError):
                ctl.release("w0")  # beyond the forgotten slots it is misuse

        run(body())

    def test_admit_propagates_error_after_forget_mid_flight(self):
        """mark_dead() during a forwarded request must not turn the
        request's real failure into a release RuntimeError."""

        async def body():
            ctl = AdmissionController(max_inflight=1, max_queue=0)
            with pytest.raises(ConnectionError):
                async with ctl.admit("w0"):
                    ctl.forget("w0")  # the health loop declared w0 dead
                    raise ConnectionError("worker died mid-request")

        run(body())

    def test_stats_shape(self):
        async def body():
            ctl = AdmissionController(max_inflight=1, max_queue=1)
            await ctl.acquire("w0")
            stats = ctl.stats()
            assert stats["max_inflight"] == 1
            assert stats["admitted"] == 1
            assert stats["inflight"] == {"w0": 1}

        run(body())

    def test_admit_context_manager_releases_on_error(self):
        async def body():
            ctl = AdmissionController(max_inflight=1, max_queue=0)
            with pytest.raises(RuntimeError):
                async with ctl.admit("w0"):
                    assert ctl.inflight("w0") == 1
                    raise RuntimeError("boom")
            assert ctl.inflight("w0") == 0

        run(body())
