"""Circuit breaker: state machine unit tests + router integration."""

import time

import pytest

from cluster_testkit import SESSION_KWARGS, run_cluster
from repro.cluster.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.service.protocol import RemoteError
from repro.testing import Fault


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance_ms(self, ms):
        self.now += ms / 1000.0


class TestStateMachine:
    def test_starts_closed_and_allows(self):
        breaker = CircuitBreaker()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_trips_after_threshold_consecutive_failures(self):
        clock = Clock()
        breaker = CircuitBreaker(failure_threshold=3, clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.trips == 1
        assert not breaker.allow()

    def test_success_resets_the_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED  # never two in a row

    def test_retry_after_counts_down_the_cooloff(self):
        clock = Clock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_after_ms=200.0, clock=clock
        )
        breaker.record_failure()
        assert breaker.retry_after_ms() == pytest.approx(200.0)
        clock.advance_ms(150.0)
        assert breaker.retry_after_ms() == pytest.approx(50.0)

    def test_half_open_admits_exactly_one_probe(self):
        clock = Clock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_after_ms=100.0, clock=clock
        )
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance_ms(101.0)
        assert breaker.allow()  # the probe
        assert breaker.state == HALF_OPEN
        assert not breaker.allow()  # everyone else still fast-fails

    def test_probe_success_closes(self):
        clock = Clock()
        breaker = CircuitBreaker(failure_threshold=1, reset_after_ms=100.0, clock=clock)
        breaker.record_failure()
        clock.advance_ms(101.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow() and breaker.allow()  # fully open for business

    def test_probe_failure_reopens_and_restarts_cooloff(self):
        clock = Clock()
        breaker = CircuitBreaker(failure_threshold=3, reset_after_ms=100.0, clock=clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance_ms(101.0)
        assert breaker.allow()
        breaker.record_failure()  # one failure suffices in half-open
        assert breaker.state == OPEN
        assert breaker.trips == 2
        assert not breaker.allow()
        clock.advance_ms(99.0)
        assert not breaker.allow()  # cool-off restarted

    def test_stuck_probe_does_not_block_forever(self):
        clock = Clock()
        breaker = CircuitBreaker(failure_threshold=1, reset_after_ms=100.0, clock=clock)
        breaker.record_failure()
        clock.advance_ms(101.0)
        assert breaker.allow()  # probe whose caller then vanishes
        clock.advance_ms(101.0)
        assert breaker.allow()  # a new caller may probe in its place

    def test_describe_is_json_safe(self):
        breaker = CircuitBreaker(failure_threshold=1)
        breaker.record_failure()
        breaker.allow()
        description = breaker.describe()
        assert description["state"] == OPEN
        assert description["trips"] == 1
        assert description["fast_fails"] == 1
        assert description["consecutive_failures"] == 1

    def test_knob_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_after_ms=0.0)


class TestRouterIntegration:
    def test_breaker_trips_fast_fails_and_recovers(self, tmp_path):
        """Blackholed worker: timeouts trip its breaker, new requests
        fast-fail with a retryable hint, and healing closes it again."""

        async def body(client, router, services, supervisor, proxies):
            await client.request("create_session", session="s", **SESSION_KWARGS)
            worker_id = router.table["s"]
            proxy = proxies[int(worker_id[1:])]
            handle = router.workers[worker_id]

            proxy.set_fault(Fault("blackhole"))
            for _ in range(2):  # breaker_threshold timeouts trip it
                with pytest.raises((RemoteError, TimeoutError)):
                    await client.request(
                        "evaluate", session="s", config=[1.0, 2.0, 3.0], timeout=2.0
                    )
            assert handle.breaker.state == OPEN

            # Fast-fail: answered from the router, no worker_timeout wait.
            t0 = time.perf_counter()
            with pytest.raises(RemoteError) as err:
                await client.request(
                    "evaluate", session="s", config=[1.0, 2.0, 3.0], timeout=5.0
                )
            assert time.perf_counter() - t0 < 0.2
            assert err.value.kind == "Unavailable"
            assert err.value.retry_after_ms is not None
            assert "circuit" in str(err.value)

            # Breaker state is surfaced in cluster_stats.
            stats = await client.request("cluster_stats")
            by_id = {row["worker"]: row for row in stats["workers"]}
            assert by_id[worker_id]["breaker"]["state"] == OPEN
            assert by_id[worker_id]["breaker"]["trips"] >= 1
            assert stats["counters"]["breaker_fast_fails"] >= 1

            # Heal the worker; after the cool-off the probe closes it.
            proxy.set_fault(None)
            import asyncio

            await asyncio.sleep(0.25)  # > breaker_reset_ms
            outcome = await client.request(
                "evaluate", session="s", config=[1.0, 2.0, 3.0], timeout=5.0
            )
            assert "value" in outcome
            assert handle.breaker.state == CLOSED

        run_cluster(
            body,
            tmp_path=tmp_path,
            workers=2,
            chaos=True,
            worker_timeout=0.4,
            breaker_threshold=2,
            breaker_reset_ms=200.0,
        )

    def test_structured_errors_do_not_trip_the_breaker(self, tmp_path):
        """A worker that *answers* — even with an error — is healthy; only
        transport failures count."""

        async def body(client, router, services, supervisor):
            await client.request("create_session", session="s", **SESSION_KWARGS)
            worker_id = router.table["s"]
            handle = router.workers[worker_id]
            for _ in range(5):
                with pytest.raises(RemoteError) as err:
                    # Wrong dimension: the worker rejects it structurally.
                    await client.request("evaluate", session="s", config=[1.0])
                assert err.value.kind not in ("Unavailable",)
            assert handle.breaker.state == CLOSED
            assert handle.breaker.consecutive_failures == 0

        run_cluster(body, tmp_path=tmp_path, workers=2, breaker_threshold=2)
