"""Chaos scenarios end to end: a hung-but-accepting worker is detected,
failed over, and ridden through; corrupt and slow transports surface as
structured, bounded errors — never hangs."""

import asyncio
import time

import pytest

from cluster_testkit import SESSION_KWARGS, detect_death, run_cluster
from repro.service.client import RETRYABLE_KINDS
from repro.service.protocol import RemoteError
from repro.testing import Fault

SUP_KWARGS = dict(
    health_interval=30.0,  # loops effectively off; tests drive check_health
    replication_interval=30.0,
    ping_timeout=0.3,
    max_ping_failures=2,
)


async def evaluate_with_retries(client, session, config, *, attempts=10):
    """The documented client-side loop: honor ``retry_after_ms`` hints."""
    for attempt in range(attempts):
        try:
            return await client.request(
                "evaluate", session=session, config=config, timeout=5.0
            )
        except RemoteError as exc:
            if exc.kind not in RETRYABLE_KINDS or attempt == attempts - 1:
                raise
            await asyncio.sleep((exc.retry_after_ms or 50.0) / 1000.0)
    raise AssertionError("unreachable")


class TestHungWorker:
    def test_hung_worker_is_detected_and_ridden_through(self, tmp_path):
        """The nastiest failure mode: the worker accepts TCP but never
        replies.  In-flight requests must fail retryably within the
        deadline (+1s slack), the health loop must declare it dead, and a
        retrying client must ride through the failover untouched."""

        async def body(client, router, services, supervisor, proxies):
            await client.request(
                "create_session", session="s", worker="w0", **SESSION_KWARGS
            )
            await client.request("simulate", session="s", config=[1.0, 2.0, 3.0])
            await client.request("replicate")

            proxies[0].set_fault(Fault("blackhole"))

            # In-flight request: structured + retryable, bounded by the
            # deadline — not a hang, not an opaque socket error.
            deadline_s = 5.0
            t0 = time.perf_counter()
            with pytest.raises(RemoteError) as err:
                await client.request(
                    "evaluate", session="s", config=[1.0, 2.0, 3.0],
                    timeout=deadline_s,
                )
            elapsed = time.perf_counter() - t0
            assert elapsed < deadline_s + 1.0
            assert err.value.kind == "Unavailable"
            assert err.value.kind in RETRYABLE_KINDS
            assert err.value.retry_after_ms > 0

            # Health pings time out (TCP connects fine!) until the worker
            # is declared dead and its sessions fail over.
            await detect_death(supervisor, "w0")
            stats = await client.request("cluster_stats")
            assert stats["counters"]["failovers"] == 1
            assert stats["counters"]["sessions_lost"] == 0
            assert stats["table"]["s"] == "w1"

            # A client that honors retry hints sees the session again —
            # with its replicated state.
            outcome = await evaluate_with_retries(client, "s", [1.0, 2.0, 3.0])
            assert outcome["exact_hit"] is True

        run_cluster(
            body,
            tmp_path=tmp_path,
            workers=2,
            chaos=True,
            supervisor_kwargs=SUP_KWARGS,
            worker_timeout=0.5,
        )

    def test_retry_loop_rides_through_undetected_outage(self, tmp_path):
        """Even before the health loop notices, a retrying client makes
        progress the moment the worker heals."""

        async def body(client, router, services, supervisor, proxies):
            await client.request(
                "create_session", session="s", worker="w0", **SESSION_KWARGS
            )
            proxies[0].set_fault(Fault("blackhole"))

            async def heal_soon():
                await asyncio.sleep(0.7)
                proxies[0].set_fault(None)

            healer = asyncio.create_task(heal_soon())
            outcome = await evaluate_with_retries(client, "s", [1.0, 2.0, 3.0])
            assert "value" in outcome
            await healer

        run_cluster(
            body,
            tmp_path=tmp_path,
            workers=2,
            chaos=True,
            worker_timeout=0.3,
        )


class TestCorruptTransport:
    def test_garbled_worker_frames_fail_retryable_then_recover(self, tmp_path):
        """A worker whose responses are corrupted mid-flight surfaces a
        retryable Unavailable; once the stream heals the router reconnects
        transparently."""

        async def body(client, router, services, supervisor, proxies):
            await client.request(
                "create_session", session="s", worker="w0", **SESSION_KWARGS
            )
            proxies[0].set_fault(Fault("garble", direction="to_client"))
            with pytest.raises(RemoteError) as err:
                await client.request(
                    "evaluate", session="s", config=[1.0, 2.0, 3.0], timeout=5.0
                )
            assert err.value.kind == "Unavailable"
            assert err.value.kind in RETRYABLE_KINDS

            proxies[0].set_fault(None)
            outcome = await evaluate_with_retries(client, "s", [1.0, 2.0, 3.0])
            assert "value" in outcome

        run_cluster(
            body, tmp_path=tmp_path, workers=2, chaos=True, worker_timeout=1.0
        )


class TestDeadlineThroughRouter:
    def test_slow_worker_trips_the_deadline_not_the_full_timeout(self, tmp_path):
        """An explicit 100 ms budget beats the generous client timeout: the
        router gives up when the budget runs out and answers with a
        non-retryable DeadlineExceeded."""

        async def body(client, router, services, supervisor, proxies):
            await client.request(
                "create_session", session="s", worker="w0", **SESSION_KWARGS
            )
            proxies[0].set_fault(Fault("latency", latency_ms=400.0))
            t0 = time.perf_counter()
            with pytest.raises(RemoteError) as err:
                await client.request(
                    "evaluate", session="s", config=[1.0, 2.0, 3.0],
                    deadline_ms=100.0, timeout=5.0,
                )
            assert time.perf_counter() - t0 < 1.0  # budget, not timeout
            assert err.value.kind == "DeadlineExceeded"
            assert err.value.kind not in RETRYABLE_KINDS
            stats = await client.request("cluster_stats")
            assert stats["counters"]["deadline_misses"] >= 1

        run_cluster(body, tmp_path=tmp_path, workers=2, chaos=True)
