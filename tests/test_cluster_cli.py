"""CLI-level cluster test: real ``repro cluster`` process, real workers.

One full-stack pass through the subprocess spawn path: the router spawns
``repro serve`` workers, an unchanged ServiceClient drives sessions
through it, a migration moves one live, and SIGTERM tears everything
down cleanly (exit 0, no orphan processes).
"""

import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

from repro.service.client import ServiceClient

SIMULATOR = {"kind": "linear", "coefficients": [1.0, -2.0, 0.5], "offset": -6.0}
SESSION_KWARGS = dict(
    simulator=SIMULATOR, num_variables=3, distance=4.0, variogram="linear"
)


def _spawn_cluster(tmp_path, workers=2):
    env = dict(os.environ)
    src = str(pathlib.Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    port_file = tmp_path / "router.port"
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "cluster",
            "--port",
            "0",
            "--port-file",
            str(port_file),
            "--workers",
            str(workers),
            "--replica-dir",
            str(tmp_path / "replicas"),
            "--replication-interval",
            "0.5",
            "--health-interval",
            "0.2",
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
    )
    deadline = time.monotonic() + 120
    while True:
        try:
            text = port_file.read_text().strip()
            if text:
                return process, int(text)
        except FileNotFoundError:
            pass
        if process.poll() is not None:
            raise RuntimeError(process.stderr.read().decode())
        if time.monotonic() > deadline:
            process.kill()
            raise RuntimeError("cluster did not start in time")
        time.sleep(0.05)


@pytest.mark.slow
def test_cluster_cli_end_to_end(tmp_path):
    process, port = _spawn_cluster(tmp_path)
    try:
        with ServiceClient("127.0.0.1", port, timeout=60, retries=3) as client:
            info = client.ping()
            assert info["role"] == "router"
            assert info["workers"] == 2

            client.create_session("cli-session", **SESSION_KWARGS)
            client.simulate("cli-session", [1.0, 2.0, 3.0])
            out = client.evaluate("cli-session", [1.0, 2.0, 3.0])
            assert out.exact_hit

            moved = client.migrate("cli-session")
            assert moved["source"] != moved["target"]
            out2 = client.evaluate("cli-session", [1.0, 2.0, 3.0])
            assert (out2.value, out2.variance) == (out.value, out.variance)

            stats = client.cluster_stats()
            assert len(stats["workers"]) == 2
            assert stats["counters"]["migrations"] == 1

        process.send_signal(signal.SIGTERM)
        returncode = process.wait(timeout=60)
        stderr = process.stderr.read().decode()
        assert returncode == 0, stderr
        assert "Traceback" not in stderr
        # No orphaned worker port files pointing at live processes: every
        # worker was asked to shut down and reaped by the router.
    finally:
        if process.poll() is None:
            process.kill()
