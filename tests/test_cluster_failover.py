"""Failover: health detection, replica restore, loss accounting.

Worker death is simulated by severing the router→worker connection (the
health ping then fails exactly as for a SIGKILLed process); the real
subprocess kill path runs in the cluster benchmark's failover drill.
"""

import asyncio

import pytest

from cluster_testkit import (
    SESSION_KWARGS,
    detect_death,
    run_cluster,
    sever_worker,
)
from repro.service.protocol import RemoteError

SUP_KWARGS = dict(
    health_interval=30.0,  # loops effectively off; tests drive check_health
    replication_interval=30.0,
    ping_timeout=0.3,
    max_ping_failures=2,
)


class TestFailover:
    def test_replicated_sessions_survive_worker_death(self, tmp_path):
        async def body(client, router, services, supervisor):
            names = ["alpha", "beta", "gamma", "delta"]
            for name in names:
                await client.create_session(name, **SESSION_KWARGS)
                await client.simulate(name, [1.0, 2.0, 3.0])
            await client.replicate()
            victims = {n for n in names if router.table[n] == "w0"}
            assert victims, "ring placed nothing on w0; rerun with other names"

            sever_worker(router, "w0")
            await detect_death(supervisor, "w0")

            stats = await client.cluster_stats()
            assert stats["counters"]["failovers"] == 1
            assert stats["counters"]["sessions_lost"] == 0
            assert all(owner == "w1" for owner in stats["table"].values())
            # Every session still answers — with its replicated state.
            for name in names:
                out = await client.evaluate(name, [1.0, 2.0, 3.0])
                assert out.exact_hit, name

        run_cluster(body, tmp_path=tmp_path, supervisor_kwargs=SUP_KWARGS)

    def test_unreplicated_session_is_lost_not_ghosted(self, tmp_path):
        async def body(client, router, services, supervisor):
            await client.request(
                "create_session", session="fresh", worker="w0", **SESSION_KWARGS
            )
            # No replication pass ran: the session has no replica.
            sever_worker(router, "w0")
            await detect_death(supervisor, "w0")
            stats = await client.cluster_stats()
            assert stats["counters"]["sessions_lost"] == 1
            assert "fresh" not in stats["table"]
            with pytest.raises(RemoteError) as err:
                await client.evaluate("fresh", [1.0, 2.0, 3.0])
            assert err.value.kind == "UnknownSession"

        run_cluster(body, tmp_path=tmp_path, supervisor_kwargs=SUP_KWARGS)

    def test_replication_lag_bounds_the_loss(self, tmp_path):
        """Observations after the last replication pass are lost; the
        replicated prefix survives — the documented durability contract."""

        async def body(client, router, services, supervisor):
            await client.request(
                "create_session", session="s", worker="w0", **SESSION_KWARGS
            )
            await client.simulate("s", [1.0, 1.0, 1.0])
            await client.replicate("s")
            await client.simulate("s", [2.0, 2.0, 2.0])  # after the replica

            sever_worker(router, "w0")
            await detect_death(supervisor, "w0")

            stats = await client.stats("s")
            assert stats["cache_size"] == 1  # the replicated point only
            out = await client.evaluate("s", [1.0, 1.0, 1.0])
            assert out.exact_hit

        run_cluster(body, tmp_path=tmp_path, supervisor_kwargs=SUP_KWARGS)

    def test_requests_during_outage_get_retryable_unavailable(self, tmp_path):
        async def body(client, router, services, supervisor):
            await client.request(
                "create_session", session="s", worker="w0", **SESSION_KWARGS
            )
            await client.replicate("s")
            sever_worker(router, "w0")
            # The worker is dead but not yet detected: the proxied request
            # fails with a retryable, hinted Unavailable — not a hang, not
            # an opaque connection error.
            with pytest.raises(RemoteError) as err:
                await client.evaluate("s", [1.0, 2.0, 3.0])
            assert err.value.kind == "Unavailable"
            assert err.value.retry_after_ms > 0
            # After detection + failover the same request succeeds.
            await detect_death(supervisor, "w0")
            out = await client.evaluate("s", [1.0, 2.0, 3.0])
            assert out is not None

        run_cluster(body, tmp_path=tmp_path, supervisor_kwargs=SUP_KWARGS)

    def test_supervisor_loops_detect_and_recover_unaided(self, tmp_path):
        """With real (short) intervals the background loops replicate and
        fail over with no test intervention at all."""

        async def body(client, router, services, supervisor):
            await client.create_session("auto", **SESSION_KWARGS)
            await client.simulate("auto", [3.0, 2.0, 1.0])
            # Wait for the replication loop to write the replica.
            for _ in range(100):
                if (tmp_path / "auto.npz").exists():
                    break
                await asyncio.sleep(0.02)
            else:
                raise AssertionError("replication loop never ran")

            victim = router.table["auto"]
            sever_worker(router, victim)
            for _ in range(100):
                if router.table["auto"] != victim:
                    break
                await asyncio.sleep(0.02)
            else:
                raise AssertionError("failover never happened")
            out = await client.evaluate("auto", [3.0, 2.0, 1.0])
            assert out.exact_hit

        run_cluster(
            body,
            tmp_path=tmp_path,
            supervisor_kwargs=dict(
                health_interval=0.05,
                replication_interval=0.05,
                ping_timeout=0.2,
                max_ping_failures=2,
            ),
        )


class TestMarkDeadMidRequest:
    def test_inflight_request_maps_to_unavailable_not_internal(self, tmp_path):
        """mark_dead() while a request is in flight to that worker must
        still surface the retryable Unavailable hint (regression: the
        admission release hit the forgotten gate and its RuntimeError
        escaped as a non-retryable InternalError)."""

        async def body(client, router, services, supervisor):
            await client.request(
                "create_session", session="s", worker="w0", **SESSION_KWARGS
            )
            await client.simulate("s", [1.0, 2.0, 3.0])
            await client.replicate("s")

            handle = router.workers["w0"]
            in_flight = asyncio.Event()
            released = asyncio.Event()

            async def hung_request(op, **fields):
                in_flight.set()
                await released.wait()
                raise ConnectionError("worker died mid-request")

            handle.client.request = hung_request
            task = asyncio.create_task(client.evaluate("s", [1.0, 2.0, 3.0]))
            await in_flight.wait()
            # The health loop declares w0 dead with the request in flight;
            # failover restores the session onto w1 from its replica.
            await router.mark_dead(handle)
            released.set()
            with pytest.raises(RemoteError) as err:
                await task
            assert err.value.kind == "Unavailable"
            assert err.value.retry_after_ms > 0
            # The retry the hint asks for succeeds against the survivor.
            out = await client.evaluate("s", [1.0, 2.0, 3.0])
            assert out.exact_hit

        run_cluster(body, tmp_path=tmp_path, supervisor_kwargs=SUP_KWARGS)


class TestSpawnIds:
    def test_spawn_ids_never_collide_across_calls(self, tmp_path, monkeypatch):
        """Growing the fleet (or replacing a dead worker) with a second
        spawn_workers() call must mint fresh ids, not recycle w0.."""
        from repro.cluster import supervisor as supervisor_mod
        from repro.cluster.router import ClusterRouter

        class FakeProcess:
            def poll(self):
                return None

        async def main():
            router = ClusterRouter(replica_dir=tmp_path)
            sup = supervisor_mod.WorkerSupervisor(router)
            monkeypatch.setattr(
                supervisor_mod,
                "spawn_worker_process",
                lambda **kwargs: (FakeProcess(), 1),
            )
            added = []

            async def fake_add(handle):
                if handle.id in router.workers:
                    raise ValueError(f"worker {handle.id!r} already registered")
                added.append(handle.id)
                router.workers[handle.id] = handle

            monkeypatch.setattr(router, "add_worker", fake_add)
            await sup.spawn_workers(2)
            await sup.spawn_workers(2)  # the second call must not collide
            assert added == ["w0", "w1", "w2", "w3"]

        asyncio.run(main())


class TestAdmissionDuringFailover:
    def test_dead_worker_placement_skips_it(self, tmp_path):
        async def body(client, router, services, supervisor):
            sever_worker(router, "w0")
            await detect_death(supervisor, "w0")
            # New sessions only ever land on live workers.
            for i in range(6):
                info = await client.create_session(f"s{i}", **SESSION_KWARGS)
                assert info["worker"] == "w1"

        run_cluster(body, tmp_path=tmp_path, supervisor_kwargs=SUP_KWARGS)
