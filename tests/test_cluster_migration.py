"""Live migration: correctness of the drain → snapshot → restore → flip
choreography, bit-identical answers, byte-identical snapshots, and
behaviour under concurrent traffic."""

import asyncio

import numpy as np
import pytest

from cluster_testkit import NV, SESSION_KWARGS, run_cluster
from repro.cluster.migration import pick_target, replica_path
from repro.service.protocol import RemoteError


def _support(n=30, seed=3):
    rng = np.random.default_rng(seed)
    return np.unique(rng.integers(0, 6, size=(n, NV)), axis=0).astype(float).tolist()


class TestMigrate:
    def test_migrate_moves_session_and_preserves_answers(self, tmp_path):
        support = _support()
        queries = [[c + 0.25 for c in cfg] for cfg in support[:6]]

        async def body(client, router, services, supervisor):
            await client.request(
                "create_session", session="mover", worker="w0", **SESSION_KWARGS
            )
            # A pinned, never-migrated replica of the same session state is
            # the control: the migrated session must answer identically.
            await client.request(
                "create_session", session="control", worker="w1", **SESSION_KWARGS
            )
            for name in ("mover", "control"):
                await client.simulate_many(name, support)

            before = [
                (o.value, o.variance, o.n_neighbors)
                for o in await client.evaluate_many("mover", queries)
            ]
            result = await client.migrate("mover")
            assert result["source"] == "w0"
            assert result["target"] == "w1"
            assert router.table["mover"] == "w1"
            assert "mover" in router.workers["w1"].sessions
            assert "mover" not in router.workers["w0"].sessions
            assert "mover" not in router.draining  # marker cleared

            after = [
                (o.value, o.variance, o.n_neighbors)
                for o in await client.evaluate_many("mover", queries)
            ]
            control = [
                (o.value, o.variance, o.n_neighbors)
                for o in await client.evaluate_many("control", queries)
            ]
            assert after == before  # migration changed nothing the client sees
            assert after == control  # and matches the never-migrated twin

        run_cluster(body, tmp_path=tmp_path)

    def test_migrated_snapshot_is_byte_identical_to_premigration(self, tmp_path):
        support = _support(seed=4)

        async def body(client, router, services, supervisor):
            await client.request(
                "create_session", session="s", worker="w0", **SESSION_KWARGS
            )
            await client.simulate_many("s", support)
            await client.snapshot("s", path=str(tmp_path / "before.npz"))
            await client.migrate("s", worker="w1")
            await client.snapshot("s", path=str(tmp_path / "after.npz"))
            before = (tmp_path / "before.npz").read_bytes()
            after = (tmp_path / "after.npz").read_bytes()
            assert before == after  # the move was bit-perfect

        run_cluster(body, tmp_path=tmp_path)

    def test_migration_refreshes_replica(self, tmp_path):
        async def body(client, router, services, supervisor):
            await client.request(
                "create_session", session="s", worker="w0", **SESSION_KWARGS
            )
            assert not replica_path(tmp_path, "s").exists()
            await client.migrate("s", worker="w1")
            # The migration snapshot doubles as the failover replica.
            assert replica_path(tmp_path, "s").exists()

        run_cluster(body, tmp_path=tmp_path)

    def test_migrate_errors(self, tmp_path):
        async def body(client, router, services, supervisor):
            with pytest.raises(RemoteError) as err:
                await client.migrate("ghost")
            assert err.value.kind == "UnknownSession"
            await client.request(
                "create_session", session="s", worker="w0", **SESSION_KWARGS
            )
            with pytest.raises(RemoteError) as err:
                await client.migrate("s", worker="w0")  # already there
            assert err.value.kind == "BadRequest"
            with pytest.raises(RemoteError) as err:
                await client.migrate("s", worker="nope")
            assert err.value.kind == "BadRequest"

        run_cluster(body, tmp_path=tmp_path)

    def test_concurrent_traffic_during_migration(self, tmp_path):
        """Requests racing a migration all succeed and stay correct: the
        router holds them while the session drains and releases them
        against the new owner."""
        support = _support(seed=5)
        query = [1.25, 2.25, 0.25]

        async def body(client, router, services, supervisor):
            await client.request(
                "create_session", session="busy", worker="w0", **SESSION_KWARGS
            )
            await client.simulate_many("busy", support)
            baseline = (await client.evaluate("busy", query)).value

            async def traffic():
                values = []
                for _ in range(20):
                    values.append((await client.evaluate("busy", query)).value)
                    await asyncio.sleep(0.001)
                return values

            traffic_tasks = [asyncio.create_task(traffic()) for _ in range(3)]
            await asyncio.sleep(0.01)  # let traffic start flowing
            result = await client.migrate("busy", worker="w1")
            assert result["target"] == "w1"
            all_values = sum(await asyncio.gather(*traffic_tasks), [])
            assert len(all_values) == 60  # nothing lost, nothing errored
            assert all(v == baseline for v in all_values)
            assert router.table["busy"] == "w1"

        run_cluster(body, tmp_path=tmp_path)


class TestPickTarget:
    def test_least_loaded_wins(self, tmp_path):
        async def body(client, router, services, supervisor):
            await client.request(
                "create_session", session="a", worker="w0", **SESSION_KWARGS
            )
            await client.request(
                "create_session", session="b", worker="w1", **SESSION_KWARGS
            )
            await client.request(
                "create_session", session="c", worker="w1", **SESSION_KWARGS
            )
            # w2 has nothing: it must be the target for anything moving.
            assert pick_target(router, exclude={"w0"}) == "w2"
            assert pick_target(router, exclude=set()) == "w2"
            with pytest.raises(Exception):
                pick_target(router, exclude={"w0", "w1", "w2"})

        run_cluster(body, tmp_path=tmp_path, workers=3)
