"""Live migration: correctness of the drain → snapshot → restore → flip
choreography, bit-identical answers, byte-identical snapshots, and
behaviour under concurrent traffic."""

import asyncio

import numpy as np
import pytest

from cluster_testkit import NV, SESSION_KWARGS, run_cluster
from repro.cluster.migration import pick_target, replica_path
from repro.service.protocol import RemoteError


def _support(n=30, seed=3):
    rng = np.random.default_rng(seed)
    return np.unique(rng.integers(0, 6, size=(n, NV)), axis=0).astype(float).tolist()


class TestMigrate:
    def test_migrate_moves_session_and_preserves_answers(self, tmp_path):
        support = _support()
        queries = [[c + 0.25 for c in cfg] for cfg in support[:6]]

        async def body(client, router, services, supervisor):
            await client.request(
                "create_session", session="mover", worker="w0", **SESSION_KWARGS
            )
            # A pinned, never-migrated replica of the same session state is
            # the control: the migrated session must answer identically.
            await client.request(
                "create_session", session="control", worker="w1", **SESSION_KWARGS
            )
            for name in ("mover", "control"):
                await client.simulate_many(name, support)

            before = [
                (o.value, o.variance, o.n_neighbors)
                for o in await client.evaluate_many("mover", queries)
            ]
            result = await client.migrate("mover")
            assert result["source"] == "w0"
            assert result["target"] == "w1"
            assert result["source_deleted"] is True
            assert router.table["mover"] == "w1"
            assert "mover" in router.workers["w1"].sessions
            assert "mover" not in router.workers["w0"].sessions
            assert "mover" not in router.draining  # marker cleared

            after = [
                (o.value, o.variance, o.n_neighbors)
                for o in await client.evaluate_many("mover", queries)
            ]
            control = [
                (o.value, o.variance, o.n_neighbors)
                for o in await client.evaluate_many("control", queries)
            ]
            assert after == before  # migration changed nothing the client sees
            assert after == control  # and matches the never-migrated twin

        run_cluster(body, tmp_path=tmp_path)

    def test_migrated_snapshot_is_byte_identical_to_premigration(self, tmp_path):
        support = _support(seed=4)

        async def body(client, router, services, supervisor):
            await client.request(
                "create_session", session="s", worker="w0", **SESSION_KWARGS
            )
            await client.simulate_many("s", support)
            await client.snapshot("s", path=str(tmp_path / "before.npz"))
            await client.migrate("s", worker="w1")
            await client.snapshot("s", path=str(tmp_path / "after.npz"))
            before = (tmp_path / "before.npz").read_bytes()
            after = (tmp_path / "after.npz").read_bytes()
            assert before == after  # the move was bit-perfect

        run_cluster(body, tmp_path=tmp_path)

    def test_migration_refreshes_replica(self, tmp_path):
        async def body(client, router, services, supervisor):
            await client.request(
                "create_session", session="s", worker="w0", **SESSION_KWARGS
            )
            assert not replica_path(tmp_path, "s").exists()
            await client.migrate("s", worker="w1")
            # The migration snapshot doubles as the failover replica.
            assert replica_path(tmp_path, "s").exists()

        run_cluster(body, tmp_path=tmp_path)

    def test_migrate_errors(self, tmp_path):
        async def body(client, router, services, supervisor):
            with pytest.raises(RemoteError) as err:
                await client.migrate("ghost")
            assert err.value.kind == "UnknownSession"
            await client.request(
                "create_session", session="s", worker="w0", **SESSION_KWARGS
            )
            with pytest.raises(RemoteError) as err:
                await client.migrate("s", worker="w0")  # already there
            assert err.value.kind == "BadRequest"
            with pytest.raises(RemoteError) as err:
                await client.migrate("s", worker="nope")
            assert err.value.kind == "BadRequest"

        run_cluster(body, tmp_path=tmp_path)

    def test_concurrent_traffic_during_migration(self, tmp_path):
        """Requests racing a migration all succeed and stay correct: the
        router holds them while the session drains and releases them
        against the new owner."""
        support = _support(seed=5)
        query = [1.25, 2.25, 0.25]

        async def body(client, router, services, supervisor):
            await client.request(
                "create_session", session="busy", worker="w0", **SESSION_KWARGS
            )
            await client.simulate_many("busy", support)
            baseline = (await client.evaluate("busy", query)).value

            async def traffic():
                values = []
                for _ in range(20):
                    values.append((await client.evaluate("busy", query)).value)
                    await asyncio.sleep(0.001)
                return values

            traffic_tasks = [asyncio.create_task(traffic()) for _ in range(3)]
            await asyncio.sleep(0.01)  # let traffic start flowing
            result = await client.migrate("busy", worker="w1")
            assert result["target"] == "w1"
            all_values = sum(await asyncio.gather(*traffic_tasks), [])
            assert len(all_values) == 60  # nothing lost, nothing errored
            assert all(v == baseline for v in all_values)
            assert router.table["busy"] == "w1"

        run_cluster(body, tmp_path=tmp_path)

    def test_queued_request_is_seen_by_drain(self, tmp_path):
        """A request waiting in the admission queue already counts as in
        flight for its session, so the drain waits for it (regression:
        drain saw zero in-flight, flipped the table and deleted the
        source under the queued request, which then failed with
        UnknownSession)."""
        support = _support(seed=6)
        query = [1.25, 2.25, 0.25]

        async def body(client, router, services, supervisor):
            await client.request(
                "create_session", session="busy", worker="w0", **SESSION_KWARGS
            )
            await client.simulate_many("busy", support)
            baseline = (await client.evaluate("busy", query)).value

            # Occupy w0's only admission slot so the next evaluate queues.
            await router.admission.acquire("w0")
            task = asyncio.create_task(client.evaluate("busy", query))
            while router.admission.waiting("w0") == 0:
                await asyncio.sleep(0.005)
            assert router.workers["w0"].session_inflight.get("busy", 0) == 1

            migrate = asyncio.create_task(client.migrate("busy", worker="w1"))
            await asyncio.sleep(0.05)
            assert not migrate.done()  # the drain waits for the queued request

            router.admission.release("w0")  # let it run against the source
            out = await task
            assert out.value == baseline  # served, not UnknownSession
            result = await migrate
            assert result["target"] == "w1"
            assert router.table["busy"] == "w1"

        run_cluster(body, tmp_path=tmp_path, max_inflight=1, max_queue=8)

    def test_committed_migration_survives_source_delete_failure(self, tmp_path):
        """Once the routing entry has flipped, a failing source-side
        delete_session is reported, not raised: the client must be able
        to tell the migration succeeded."""

        async def body(client, router, services, supervisor):
            await client.request(
                "create_session", session="s", worker="w0", **SESSION_KWARGS
            )
            await client.simulate("s", [1.0, 2.0, 3.0])
            real_request = router.workers["w0"].client.request

            async def flaky(op, **fields):
                if op == "delete_session":
                    raise ConnectionError("source died right after the flip")
                return await real_request(op, **fields)

            router.workers["w0"].client.request = flaky
            result = await client.migrate("s", worker="w1")
            assert result["target"] == "w1"
            assert result["source_deleted"] is False
            assert router.table["s"] == "w1"
            assert "s" not in router.draining  # marker still cleaned up
            out = await client.evaluate("s", [1.0, 2.0, 3.0])
            assert out.exact_hit  # the target copy serves

        run_cluster(body, tmp_path=tmp_path)


class TestPickTarget:
    def test_least_loaded_wins(self, tmp_path):
        async def body(client, router, services, supervisor):
            await client.request(
                "create_session", session="a", worker="w0", **SESSION_KWARGS
            )
            await client.request(
                "create_session", session="b", worker="w1", **SESSION_KWARGS
            )
            await client.request(
                "create_session", session="c", worker="w1", **SESSION_KWARGS
            )
            # w2 has nothing: it must be the target for anything moving.
            assert pick_target(router, exclude={"w0"}) == "w2"
            assert pick_target(router, exclude=set()) == "w2"
            with pytest.raises(Exception):
                pick_target(router, exclude={"w0", "w1", "w2"})

        run_cluster(body, tmp_path=tmp_path, workers=3)


class TestWarmFactorCacheMigration:
    def test_migration_preserves_warm_factor_cache(self, tmp_path):
        """Migration travels over a format-v2 snapshot, so the warm factor
        cache rides along: replaying the pre-migration queries on the
        target refactorizes zero groups."""
        support = _support(n=40, seed=11)
        queries = [[c + 0.25 for c in cfg] for cfg in support[:8]]

        async def body(client, router, services, supervisor):
            await client.request(
                "create_session", session="warm", worker="w0", **SESSION_KWARGS
            )
            await client.simulate_many("warm", support)
            before = await client.evaluate_many("warm", queries)
            source_est = services[0].sessions["warm"].estimator
            assert dict(source_est.stats.factor.as_pairs())["fresh"] > 0

            await client.migrate("warm")
            target_est = services[1].sessions["warm"].estimator
            fresh_restored = dict(target_est.stats.factor.as_pairs())["fresh"]
            assert len(target_est.factor_cache) > 0  # arrived warm

            after = await client.evaluate_many("warm", queries)
            fresh_after = dict(target_est.stats.factor.as_pairs())["fresh"]
            assert fresh_after - fresh_restored == 0  # zero refactorizations
            assert [(o.value, o.variance) for o in after] == [
                (o.value, o.variance) for o in before
            ]

        run_cluster(body, tmp_path=tmp_path)
