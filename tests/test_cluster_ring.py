"""Consistent-hash ring: stability, balance, minimal movement."""

import pytest

from repro.cluster.ring import DEFAULT_REPLICAS, HashRing


def keys(n):
    return [f"session-{i}" for i in range(n)]


class TestBasics:
    def test_empty_ring_rejects_assignment(self):
        with pytest.raises(LookupError):
            HashRing().assign("anything")

    def test_replicas_validated(self):
        with pytest.raises(ValueError):
            HashRing(replicas=0)

    def test_worker_id_validated(self):
        with pytest.raises(ValueError):
            HashRing().add("")

    def test_membership_and_len(self):
        ring = HashRing(["a", "b"])
        assert len(ring) == 2
        assert "a" in ring and "c" not in ring
        assert ring.workers == ["a", "b"]

    def test_add_and_remove_idempotent(self):
        ring = HashRing(["a"])
        ring.add("a")
        assert len(ring) == 1
        ring.remove("ghost")  # no-op
        ring.remove("a")
        assert len(ring) == 0


class TestPlacement:
    def test_deterministic_across_instances(self):
        # Two independently built rings (even with different insertion
        # order) agree on every key: placement must be reproducible in any
        # process, which is why hashing is BLAKE2b and not hash().
        one = HashRing(["w0", "w1", "w2"])
        two = HashRing(["w2", "w0", "w1"])
        for key in keys(200):
            assert one.assign(key) == two.assign(key)

    def test_roughly_balanced(self):
        ring = HashRing([f"w{i}" for i in range(4)])
        counts = {w: 0 for w in ring.workers}
        for key in keys(4000):
            counts[ring.assign(key)] += 1
        for count in counts.values():
            # Fair share is 1000; DEFAULT_REPLICAS keeps the skew modest.
            assert 500 < count < 1600, counts

    def test_removal_moves_only_the_removed_workers_keys(self):
        ring = HashRing(["w0", "w1", "w2"])
        before = {key: ring.assign(key) for key in keys(500)}
        ring.remove("w1")
        for key, owner in before.items():
            if owner == "w1":
                assert ring.assign(key) in ("w0", "w2")
            else:
                assert ring.assign(key) == owner  # survivors keep their keys

    def test_addition_only_steals_keys(self):
        ring = HashRing(["w0", "w1"])
        before = {key: ring.assign(key) for key in keys(500)}
        ring.add("w2")
        moved = 0
        for key, owner in before.items():
            after = ring.assign(key)
            if after != owner:
                assert after == "w2"  # keys only ever move *to* the newcomer
                moved += 1
        assert 0 < moved < len(before)  # it took some, not everything


class TestPreference:
    def test_first_preference_is_the_assignment(self):
        ring = HashRing(["w0", "w1", "w2"])
        for key in keys(100):
            assert next(ring.preference(key)) == ring.assign(key)

    def test_preference_lists_every_worker_once(self):
        ring = HashRing(["w0", "w1", "w2", "w3"])
        for key in keys(50):
            order = list(ring.preference(key))
            assert sorted(order) == ring.workers
            assert len(set(order)) == len(order)

    def test_preference_predicts_failover_target(self):
        # The second preference is exactly where the key lands if its
        # owner disappears — the invariant the failover path relies on.
        ring = HashRing(["w0", "w1", "w2"])
        for key in keys(100):
            first, second = list(ring.preference(key))[:2]
            ring.remove(first)
            assert ring.assign(key) == second
            ring.add(first)

    def test_empty_ring_preference(self):
        assert list(HashRing().preference("k")) == []
