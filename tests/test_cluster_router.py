"""End-to-end router tests: placement, proxying, admission, equivalence.

Everything runs against a real router and real workers over loopback TCP
(see ``cluster_testkit``); clients are the unchanged service clients —
the transparency contract under test.
"""

import asyncio

import numpy as np
import pytest

from cluster_testkit import NV, SESSION_KWARGS, SIMULATOR, run_cluster
from repro.cluster.migration import replica_path
from repro.core.estimator import KrigingEstimator
from repro.service.protocol import RemoteError


def _field(config):
    return float(np.asarray(config, dtype=float) @ np.array([1.0, -2.0, 0.5]) - 6.0)


def _configs(n, seed=0):
    rng = np.random.default_rng(seed)
    return [[float(v) for v in row] for row in rng.integers(0, 6, size=(n, NV))]


class TestRoutingVerbs:
    def test_ping_reports_router_role_and_fleet(self, tmp_path):
        async def body(client, router, services, supervisor):
            info = await client.ping()
            assert info["role"] == "router"
            assert info["workers"] == 2
            assert info["sessions"] == 0

        run_cluster(body, tmp_path=tmp_path)

    def test_create_routes_by_ring_and_reports_worker(self, tmp_path):
        async def body(client, router, services, supervisor):
            placed = {}
            for name in ("alpha", "beta", "gamma", "delta"):
                info = await client.create_session(name, **SESSION_KWARGS)
                assert info["worker"] == router.ring.assign(name)
                placed[name] = info["worker"]
            assert router.table == placed
            # Both list_sessions and stats merge across workers and
            # annotate each row with its owner.
            rows = await client.list_sessions()
            assert {r["session"]: r["worker"] for r in rows} == placed
            stats = await client.stats()
            assert {r["session"]: r["worker"] for r in stats["sessions"]} == placed
            assert stats["cluster"]["counters"]["migrations"] == 0

        run_cluster(body, tmp_path=tmp_path)

    def test_worker_pin_overrides_ring(self, tmp_path):
        async def body(client, router, services, supervisor):
            for name in ("a1", "a2"):
                info = await client.request(
                    "create_session", session=name, worker="w1", **SESSION_KWARGS
                )
                assert info["worker"] == "w1"
            with pytest.raises(RemoteError) as err:
                await client.request(
                    "create_session", session="a3", worker="ghost", **SESSION_KWARGS
                )
            assert err.value.kind == "BadRequest"

        run_cluster(body, tmp_path=tmp_path)

    def test_unknown_session_and_ops(self, tmp_path):
        async def body(client, router, services, supervisor):
            with pytest.raises(RemoteError) as err:
                await client.evaluate("ghost", [1, 2, 3])
            assert err.value.kind == "UnknownSession"
            with pytest.raises(RemoteError) as err:
                await client.request("frobnicate")
            assert err.value.kind == "UnknownOp"
            with pytest.raises(RemoteError) as err:
                await client.request("evaluate")  # no session field
            assert err.value.kind == "UnknownOp"

        run_cluster(body, tmp_path=tmp_path)

    def test_worker_errors_pass_through_verbatim(self, tmp_path):
        async def body(client, router, services, supervisor):
            await client.create_session("s", **SESSION_KWARGS)
            with pytest.raises(RemoteError) as err:
                await client.evaluate("s", [1.0])  # wrong arity
            assert err.value.kind == "BadRequest"
            assert "3 numbers" in str(err.value)

        run_cluster(body, tmp_path=tmp_path)

    def test_delete_session_clears_route_and_replica(self, tmp_path):
        async def body(client, router, services, supervisor):
            await client.create_session("doomed", **SESSION_KWARGS)
            await client.replicate("doomed")
            assert replica_path(tmp_path, "doomed").exists()
            await client.delete_session("doomed")
            assert "doomed" not in router.table
            assert not replica_path(tmp_path, "doomed").exists()
            with pytest.raises(RemoteError) as err:
                await client.evaluate("doomed", [1, 2, 3])
            assert err.value.kind == "UnknownSession"

        run_cluster(body, tmp_path=tmp_path)

    def test_restore_requires_explicit_session_name(self, tmp_path):
        async def body(client, router, services, supervisor):
            await client.create_session("orig", **SESSION_KWARGS)
            await client.simulate("orig", [1.0, 2.0, 3.0])
            path = str(tmp_path / "orig-snap.npz")
            await client.snapshot("orig", path=path)
            with pytest.raises(RemoteError) as err:
                await client.restore(path=path)  # no session name
            assert err.value.kind == "BadRequest"
            info = await client.restore(path=path, session="copy")
            assert info["session"] == "copy"
            assert router.table["copy"] == info["worker"]
            out = await client.evaluate("copy", [1.0, 2.0, 3.0])
            assert out.exact_hit

        run_cluster(body, tmp_path=tmp_path)


class TestEquivalence:
    def test_cluster_matches_local_estimator_bitwise(self, tmp_path):
        """Two sessions pinned to two different workers answer exactly —
        bit for bit — like a local estimator fed the same sequence;
        sharding must not change a single bit of any answer."""
        rng = np.random.default_rng(1)
        support = np.unique(rng.integers(0, 6, size=(40, NV)), axis=0).astype(float)
        queries = np.vstack([support[:8] + 0.25, support[:3]])  # interp + exact

        async def body(client, router, services, supervisor):
            for name, worker in (("left", "w0"), ("right", "w1")):
                await client.request(
                    "create_session", session=name, worker=worker, **SESSION_KWARGS
                )
            results = {}
            for name in ("left", "right"):
                await client.simulate_many(name, support.tolist())
                # Single queries take the single-evaluate path; the bulk
                # call takes evaluate_batch — compare each to its local twin.
                singles = [
                    await client.evaluate(name, q) for q in queries.tolist()
                ]
                bulk = await client.evaluate_many(name, queries.tolist())
                results[name] = (
                    [(o.value, o.variance, o.n_neighbors, o.exact_hit) for o in singles],
                    [(o.value, o.variance, o.n_neighbors, o.exact_hit) for o in bulk],
                )
            return results

        remote = run_cluster(body, tmp_path=tmp_path)

        local = KrigingEstimator(_field, NV, distance=4.0, variogram="linear")
        for point in support:
            local.record_measurement(point, _field(point))
        # A remote single evaluate is flushed by the micro-batcher as a
        # batch of one; its local twin is evaluate_batch([q]).
        expected_singles = [
            (o.value, o.variance, o.n_neighbors, o.exact_hit)
            for o in (local.evaluate_batch([q])[0] for q in queries)
        ]
        expected_bulk = [
            (o.value, o.variance, o.n_neighbors, o.exact_hit)
            for o in local.evaluate_batch(queries)
        ]
        for name in ("left", "right"):
            singles, bulk = remote[name]
            assert singles == expected_singles
            assert bulk == expected_bulk

    def test_sessions_are_independent_across_workers(self, tmp_path):
        async def body(client, router, services, supervisor):
            await client.request(
                "create_session", session="sa", worker="w0", **SESSION_KWARGS
            )
            await client.request(
                "create_session", session="sb", worker="w1", **SESSION_KWARGS
            )
            await client.simulate("sa", [1.0, 1.0, 1.0])
            stats_a = await client.stats("sa")
            stats_b = await client.stats("sb")
            assert stats_a["cache_size"] == 1
            assert stats_b["cache_size"] == 0

        run_cluster(body, tmp_path=tmp_path)


class TestAdmission:
    def test_overload_rejects_with_retry_hint(self, tmp_path):
        async def body(client, router, services, supervisor):
            await client.create_session("hot", **SESSION_KWARGS)
            config = [1.0, 2.0, 3.0]
            await client.simulate("hot", config)
            # Pipeline far more requests than the single slot + empty
            # queue admit; the surplus must be rejected, not buffered.
            tasks = [
                asyncio.create_task(client.evaluate("hot", config))
                for _ in range(12)
            ]
            outcomes = await asyncio.gather(*tasks, return_exceptions=True)
            rejected = [
                e
                for e in outcomes
                if isinstance(e, RemoteError) and e.kind == "Overloaded"
            ]
            succeeded = [o for o in outcomes if not isinstance(o, Exception)]
            assert rejected, "overload never triggered"
            assert succeeded, "admission starved every request"
            for error in rejected:
                assert error.retry_after_ms is not None
                assert error.retry_after_ms > 0
            stats = await client.cluster_stats()
            assert stats["admission"]["rejected"] == len(rejected)

        run_cluster(
            body, tmp_path=tmp_path, workers=1, max_inflight=1, max_queue=2
        )

    def test_queue_absorbs_bursts_without_rejection(self, tmp_path):
        async def body(client, router, services, supervisor):
            await client.create_session("s", **SESSION_KWARGS)
            config = [1.0, 2.0, 3.0]
            await client.simulate("s", config)
            tasks = [
                asyncio.create_task(client.evaluate("s", config)) for _ in range(8)
            ]
            outcomes = await asyncio.gather(*tasks)
            assert len(outcomes) == 8
            stats = await client.cluster_stats()
            assert stats["admission"]["rejected"] == 0
            assert stats["admission"]["queued"] > 0  # the burst did queue

        run_cluster(
            body, tmp_path=tmp_path, workers=1, max_inflight=2, max_queue=32
        )


class TestClusterStats:
    def test_topology_shape(self, tmp_path):
        async def body(client, router, services, supervisor):
            await client.create_session("s", **SESSION_KWARGS)
            stats = await client.cluster_stats()
            assert [w["worker"] for w in stats["workers"]] == ["w0", "w1"]
            assert all(w["alive"] for w in stats["workers"])
            assert stats["table"] == {"s": router.table["s"]}
            assert stats["counters"]["proxied"] > 0
            assert stats["replica_dir"] == str(tmp_path)

        run_cluster(body, tmp_path=tmp_path)
