"""Unit tests for the extra DCT benchmark (repro.signal.dct)."""

import numpy as np
import pytest

from repro.signal.dct import BLOCK, DCTBenchmark, dct_matrix


@pytest.fixture(scope="module")
def dct():
    return DCTBenchmark(n_blocks=12, seed=4)


class TestDCTMatrix:
    def test_orthonormal(self):
        m = dct_matrix()
        np.testing.assert_allclose(m @ m.T, np.eye(BLOCK), atol=1e-12)

    def test_dc_row_constant(self):
        m = dct_matrix()
        np.testing.assert_allclose(m[0], m[0, 0])

    def test_matches_scipy(self):
        from scipy.fft import dct as scipy_dct

        x = np.arange(8, dtype=float)
        ours = dct_matrix() @ x
        scipys = scipy_dct(x, type=2, norm="ortho")
        np.testing.assert_allclose(ours, scipys, atol=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            dct_matrix(1)


class TestBenchmark:
    def test_nv_is_six(self, dct):
        assert dct.NUM_VARIABLES == 6
        assert len(dct.VARIABLE_NAMES) == 6

    def test_reference_is_2d_dct(self, dct):
        expected = np.einsum("ij,njk,lk->nil", dct.dct, dct.blocks, dct.dct)
        np.testing.assert_allclose(dct.reference(), expected, atol=1e-12)

    def test_energy_preserved_by_reference(self, dct):
        # Orthonormal transform: Parseval (up to coefficient quantization).
        ref = dct.reference()
        in_energy = np.sum(dct.blocks**2, axis=(1, 2))
        out_energy = np.sum(ref**2, axis=(1, 2))
        np.testing.assert_allclose(out_energy, in_energy, rtol=1e-3)

    def test_high_precision_converges(self, dct):
        out = dct.simulate([26] * 6)
        assert np.max(np.abs(out - dct.reference())) < 1e-4

    def test_monotone_improvement(self, dct):
        assert dct.noise_power_db([8] * 6) > dct.noise_power_db([14] * 6) + 20

    def test_each_variable_matters(self, dct):
        base = dct.noise_power_db([16] * 6)
        for i in range(6):
            w = [16] * 6
            w[i] = 7
            assert dct.noise_power_db(w) > base + 3, f"variable {i} inert"

    def test_wrong_length_rejected(self, dct):
        with pytest.raises(ValueError, match="expected 6"):
            dct.simulate([8] * 5)

    def test_registry_integration(self):
        from repro.experiments.registry import build_benchmark

        setup = build_benchmark("dct", "small")
        assert setup.problem.num_variables == 6
        trace = setup.record_trajectory()
        assert len(trace) > 10
        assert setup.reference_result.satisfied

    def test_validation(self):
        with pytest.raises(ValueError):
            DCTBenchmark(n_blocks=0)
