"""Unit tests for the decision-divergence helpers (repro.experiments.decisions)."""

import pytest

from repro.experiments.decisions import (
    DecisionDivergence,
    _budget_difference,
    _decision_difference,
)


class TestDecisionDifference:
    def test_identical_sequences(self):
        assert _decision_difference([0, 1, 2], [0, 1, 2]) == 0.0

    def test_fully_different(self):
        assert _decision_difference([0, 0, 0], [1, 1, 1]) == 100.0

    def test_partial(self):
        assert _decision_difference([0, 1, 2, 3], [0, 1, 9, 9]) == 50.0

    def test_length_mismatch_counts_as_difference(self):
        assert _decision_difference([0, 1], [0, 1, 2, 3]) == 50.0

    def test_both_empty(self):
        assert _decision_difference([], []) == 0.0


class TestBudgetDifference:
    def test_identical_multisets_zero(self):
        # Same commits in a different order: order-insensitive metric is 0.
        assert _budget_difference([0, 1, 2], [2, 0, 1]) == 0.0

    def test_disjoint(self):
        assert _budget_difference([0, 0], [1, 1]) == pytest.approx(200.0)

    def test_partial_overlap(self):
        assert _budget_difference([0, 0, 1], [0, 1, 1]) == pytest.approx(200.0 / 3)

    def test_both_empty(self):
        assert _budget_difference([], []) == 0.0


class TestDataclass:
    def _divergence(self, ref_cost=50.0, krig_cost=55.0):
        return DecisionDivergence(
            different_decisions_percent=10.0,
            budget_difference_percent=5.0,
            reference_solution=(8, 9),
            kriging_solution=(9, 9),
            reference_cost=ref_cost,
            kriging_cost=krig_cost,
            n_simulations_reference=40,
            n_simulations_kriging=20,
        )

    def test_cost_gap(self):
        assert self._divergence().cost_gap_percent == pytest.approx(10.0)

    def test_cost_gap_zero_reference(self):
        assert self._divergence(ref_cost=0.0).cost_gap_percent == 0.0
