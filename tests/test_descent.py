"""Unit tests for the steepest-descent noise budgeting (repro.optimization.descent)."""

import numpy as np
import pytest

from repro.optimization.descent import NoiseBudgetingDescent
from repro.optimization.evaluator import SimulationEvaluator
from repro.optimization.problem import DSEProblem, MetricSense


def smooth_rate(weights):
    """Analytic 'classification rate': a product of per-source sigmoids that
    increases with every protection level."""
    weights = np.asarray(weights, dtype=float)

    def metric(levels):
        levels = np.asarray(levels, dtype=float)
        per_source = 1.0 / (1.0 + np.exp(-(levels - 6.0) * weights))
        return float(np.prod(per_source) ** (1.0 / len(levels)))

    return metric


def make_problem(nv=4, threshold=0.9, weights=None):
    weights = np.ones(nv) if weights is None else weights
    return DSEProblem(
        name="rate",
        num_variables=nv,
        min_value=1,
        max_value=16,
        simulate=smooth_rate(weights),
        sense=MetricSense.HIGHER_IS_BETTER,
        threshold=threshold,
    )


class TestDescent:
    def test_final_budget_satisfies_constraint(self):
        problem = make_problem()
        result = NoiseBudgetingDescent(problem).run()
        assert result.satisfied
        assert problem.satisfied(problem.simulate(np.array(result.solution)))

    def test_budget_is_locally_maximal(self):
        """No single extra step of noise is tolerable at the returned budget."""
        problem = make_problem()
        result = NoiseBudgetingDescent(problem).run()
        w = np.array(result.solution)
        for i in range(problem.num_variables):
            if w[i] > problem.min_value:
                trial = w.copy()
                trial[i] -= 1
                assert not problem.satisfied(problem.simulate(trial))

    def test_descent_lowers_cost(self):
        problem = make_problem()
        result = NoiseBudgetingDescent(problem).run()
        start_cost = problem.cost(problem.full_configuration(problem.max_value))
        assert result.cost < start_cost

    def test_sensitive_source_keeps_higher_level(self):
        # Source 0 is 4x more sensitive to noise than source 1.
        problem = make_problem(nv=2, weights=np.array([4.0, 1.0]), threshold=0.8)
        result = NoiseBudgetingDescent(problem).run()
        assert result.solution[0] >= result.solution[1]

    def test_infeasible_start_rejected(self):
        problem = make_problem(threshold=0.999999)
        descent = NoiseBudgetingDescent(
            problem, start=problem.full_configuration(2)
        )
        with pytest.raises(ValueError, match="violates"):
            descent.run()

    def test_custom_start(self):
        problem = make_problem()
        result = NoiseBudgetingDescent(
            problem, start=problem.full_configuration(12)
        ).run()
        assert result.minimum == tuple([12] * 4)
        assert all(s <= 12 for s in result.solution)

    def test_decisions_match_total_steps(self):
        problem = make_problem()
        evaluator = SimulationEvaluator(problem.simulate)
        result = NoiseBudgetingDescent(problem, evaluator).run()
        steps = int(
            np.sum(np.array(result.minimum) - np.array(result.solution))
        )
        assert len(result.trace.decisions) == steps

    def test_trace_contains_all_queries(self):
        problem = make_problem(nv=3)
        result = NoiseBudgetingDescent(problem).run()
        assert len(result.trace) >= len(result.trace.decisions) * 2
