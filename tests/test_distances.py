"""Unit tests for repro.core.distances."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.distances import (
    DistanceMetric,
    distance,
    distances_to,
    pairwise_distances,
)

vectors = st.lists(st.integers(min_value=-20, max_value=20), min_size=1, max_size=8)


class TestCoerce:
    def test_from_string(self):
        assert DistanceMetric.coerce("l1") is DistanceMetric.L1
        assert DistanceMetric.coerce("L2") is DistanceMetric.L2
        assert DistanceMetric.coerce("linf") is DistanceMetric.LINF

    def test_from_enum(self):
        assert DistanceMetric.coerce(DistanceMetric.L1) is DistanceMetric.L1

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown distance metric"):
            DistanceMetric.coerce("manhattan")


class TestDistance:
    def test_l1(self):
        assert distance([1, 2, 3], [2, 0, 3], "l1") == 3.0

    def test_l2(self):
        assert distance([0, 0], [3, 4], "l2") == 5.0

    def test_linf(self):
        assert distance([1, 2, 3], [4, 2, 1], "linf") == 3.0

    def test_paper_algorithm_uses_l1_semantics(self):
        # Algorithms 1-2: dCur = ||w - w_sim||_1.
        w = np.array([16, 16, 16])
        w_sim = np.array([16, 15, 14])
        assert distance(w, w_sim) == 3.0

    @given(vectors)
    def test_identity(self, v):
        for metric in DistanceMetric:
            assert distance(v, v, metric) == 0.0

    @given(vectors, st.data())
    def test_symmetry(self, a, data):
        b = data.draw(
            st.lists(
                st.integers(min_value=-20, max_value=20),
                min_size=len(a),
                max_size=len(a),
            )
        )
        for metric in DistanceMetric:
            assert distance(a, b, metric) == distance(b, a, metric)

    @given(vectors, st.data())
    def test_norm_ordering(self, a, data):
        b = data.draw(
            st.lists(
                st.integers(min_value=-20, max_value=20),
                min_size=len(a),
                max_size=len(a),
            )
        )
        linf = distance(a, b, "linf")
        l2 = distance(a, b, "l2")
        l1 = distance(a, b, "l1")
        assert linf <= l2 + 1e-9
        assert l2 <= l1 + 1e-9


class TestBatch:
    def test_distances_to(self):
        pts = np.array([[0, 0], [1, 1], [2, 2]])
        np.testing.assert_allclose(distances_to(pts, [0, 0]), [0.0, 2.0, 4.0])

    def test_distances_to_shape_mismatch(self):
        with pytest.raises(ValueError, match="incompatible"):
            distances_to(np.zeros((3, 2)), np.zeros(3))

    def test_pairwise_symmetric_zero_diag(self):
        pts = np.array([[0, 0], [1, 2], [3, 1]])
        d = pairwise_distances(pts)
        np.testing.assert_allclose(d, d.T)
        np.testing.assert_allclose(np.diag(d), 0.0)

    def test_pairwise_matches_scalar(self):
        pts = np.array([[0, 1, 2], [2, 2, 2], [5, 0, 1]])
        for metric in DistanceMetric:
            d = pairwise_distances(pts, metric)
            for i in range(3):
                for j in range(3):
                    assert d[i, j] == pytest.approx(
                        distance(pts[i], pts[j], metric)
                    )

    def test_triangle_inequality_pairwise(self, rng):
        pts = rng.integers(0, 10, size=(12, 4))
        for metric in DistanceMetric:
            d = pairwise_distances(pts, metric)
            for i in range(12):
                for j in range(12):
                    for k in range(12):
                        assert d[i, j] <= d[i, k] + d[k, j] + 1e-9


class TestCrossDistances:
    def test_matches_scalar(self):
        from repro.core.distances import cross_distances

        a = np.array([[0, 0], [1, 2]])
        b = np.array([[3, 1], [0, 0], [2, 2]])
        for metric in DistanceMetric:
            d = cross_distances(a, b, metric)
            assert d.shape == (2, 3)
            for i in range(2):
                for j in range(3):
                    assert d[i, j] == pytest.approx(distance(a[i], b[j], metric))

    def test_dimension_mismatch_rejected(self):
        from repro.core.distances import cross_distances

        with pytest.raises(ValueError, match="dimension"):
            cross_distances(np.zeros((2, 3)), np.zeros((2, 4)))


class TestBlockedPairwise:
    """The block path must agree exactly with the naive broadcast."""

    @pytest.mark.parametrize("metric", list(DistanceMetric))
    def test_blocked_equals_naive(self, metric, monkeypatch):
        import repro.core.distances as mod

        rng = np.random.default_rng(17)
        pts = rng.normal(size=(73, 5))
        naive = pts[:, None, :] - pts[None, :, :]
        expected = pairwise_distances(pts, metric)  # small n: naive path
        # Force the blocked path by shrinking the temp budget.
        monkeypatch.setattr(mod, "_PAIRWISE_BLOCK_BYTES", 4096)
        blocked = pairwise_distances(pts, metric)
        np.testing.assert_array_equal(blocked, expected)
        assert naive.shape == (73, 73, 5)

    def test_blocked_single_row_blocks(self, monkeypatch):
        import repro.core.distances as mod

        pts = np.arange(24, dtype=float).reshape(8, 3)
        expected = pairwise_distances(pts)
        monkeypatch.setattr(mod, "_PAIRWISE_BLOCK_BYTES", 1)  # block size 1
        np.testing.assert_array_equal(pairwise_distances(pts), expected)
