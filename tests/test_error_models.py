"""Unit tests for repro.neural.error_models."""

import numpy as np
import pytest

from repro.neural.error_models import (
    BitFlipErrorModel,
    GaussianErrorModel,
    UniformErrorModel,
)

MODELS = [
    GaussianErrorModel(),
    UniformErrorModel(),
    BitFlipErrorModel(flip_probability=0.01),
]


class TestPowerCalibration:
    @pytest.mark.parametrize("model", MODELS, ids=lambda m: type(m).__name__)
    @pytest.mark.parametrize("power", [1e-4, 1e-2, 1.0])
    def test_average_power_matches(self, model, power):
        rng = np.random.default_rng(0)
        sample = model.sample(rng, (200, 500), power)
        measured = float(np.mean(sample**2))
        assert measured == pytest.approx(power, rel=0.15)

    @pytest.mark.parametrize("model", MODELS, ids=lambda m: type(m).__name__)
    def test_zero_mean(self, model):
        rng = np.random.default_rng(1)
        sample = model.sample(rng, (200, 500), 0.01)
        assert abs(float(np.mean(sample))) < 3 * np.sqrt(0.01 / sample.size) * 5


class TestInject:
    @pytest.mark.parametrize("model", MODELS, ids=lambda m: type(m).__name__)
    def test_zero_power_is_identity(self, model):
        rng = np.random.default_rng(2)
        x = np.ones((4, 4))
        out = model.inject(rng, x, 0.0)
        assert out is x

    @pytest.mark.parametrize("model", MODELS, ids=lambda m: type(m).__name__)
    def test_shape_preserved(self, model):
        rng = np.random.default_rng(3)
        x = np.zeros((2, 3, 4))
        assert model.inject(rng, x, 1e-3).shape == x.shape


class TestBitFlip:
    def test_sparsity(self):
        model = BitFlipErrorModel(flip_probability=0.01)
        rng = np.random.default_rng(4)
        sample = model.sample(rng, (1000, 100), 1e-2)
        hit_rate = float(np.mean(sample != 0.0))
        assert hit_rate == pytest.approx(0.01, rel=0.2)

    def test_magnitude_grows_as_hits_rarify(self):
        rng = np.random.default_rng(5)
        rare = BitFlipErrorModel(flip_probability=1e-4).sample(rng, (10**6,), 1e-2)
        magnitude = np.max(np.abs(rare))
        assert magnitude == pytest.approx(np.sqrt(1e-2 / 1e-4), rel=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            BitFlipErrorModel(flip_probability=0.0)
        with pytest.raises(ValueError):
            BitFlipErrorModel(flip_probability=1.5)


class TestBenchmarkIntegration:
    def test_uniform_model_in_benchmark(self):
        from repro.neural import SensitivityBenchmark, UniformErrorModel

        bench = SensitivityBenchmark(
            n_images=24, image_size=16, seed=5, error_model=UniformErrorModel()
        )
        clean = bench.evaluate([16] * 10)
        noisy = bench.evaluate([3] * 10)
        assert clean == pytest.approx(1.0)
        assert noisy < clean

    def test_default_model_unchanged_realizations(self):
        """Plugging the Gaussian model explicitly must reproduce the default."""
        from repro.neural import GaussianErrorModel, SensitivityBenchmark

        a = SensitivityBenchmark(n_images=24, image_size=16, seed=5)
        b = SensitivityBenchmark(
            n_images=24, image_size=16, seed=5, error_model=GaussianErrorModel()
        )
        assert a.evaluate([8] * 10) == b.evaluate([8] * 10)
