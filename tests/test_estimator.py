"""Unit tests for repro.core.estimator (the interpolate-or-simulate policy)."""

import numpy as np
import pytest

from repro.core.estimator import KrigingEstimator
from repro.core.models import LinearVariogram


_COEFFS = np.array([1.0, -2.0, 0.5, 0.25])


def linear_metric(config):
    """Dimension-agnostic smooth test field."""
    c = np.asarray(config, dtype=float)
    coeffs = np.resize(_COEFFS, c.size)
    return float(c @ coeffs + 3.0)


class CountingSim:
    def __init__(self, fn=linear_metric):
        self.fn = fn
        self.calls = []

    def __call__(self, config):
        self.calls.append(np.asarray(config).copy())
        return self.fn(config)


class TestPolicy:
    def test_first_queries_simulated(self):
        sim = CountingSim()
        est = KrigingEstimator(sim, 3, distance=2, nn_min=1)
        out = est.evaluate([4, 4, 4])
        assert not out.interpolated
        assert len(sim.calls) == 1

    def test_interpolation_requires_strictly_more_than_nn_min(self):
        sim = CountingSim()
        est = KrigingEstimator(sim, 3, distance=3, nn_min=1)
        est.evaluate([4, 4, 4])          # sim 1
        out = est.evaluate([5, 4, 4])    # one neighbor: Nn = 1, not > 1
        assert not out.interpolated
        out = est.evaluate([4, 5, 4])    # two neighbors now
        assert out.interpolated
        assert len(sim.calls) == 2

    def test_far_configuration_simulated(self):
        sim = CountingSim()
        est = KrigingEstimator(sim, 3, distance=2, nn_min=1)
        est.evaluate([0, 0, 0])
        est.evaluate([1, 0, 0])
        out = est.evaluate([10, 10, 10])
        assert not out.interpolated
        assert out.n_neighbors == 0

    def test_interpolated_configs_never_support(self):
        """Section III-B: interpolated points are not reused for kriging."""
        sim = CountingSim()
        est = KrigingEstimator(sim, 2, distance=4, nn_min=1)
        est.evaluate([4, 4])
        est.evaluate([5, 4])
        out = est.evaluate([4, 5])
        assert out.interpolated
        assert len(est.cache) == 2  # the interpolated point was not added

    def test_exact_hit_returns_cached_value(self):
        sim = CountingSim()
        est = KrigingEstimator(sim, 2, distance=2, nn_min=1)
        first = est.evaluate([7, 7])
        again = est.evaluate([7, 7])
        assert again.exact_hit
        assert again.interpolated
        assert again.value == first.value
        assert len(sim.calls) == 1

    def test_accuracy_on_smooth_field(self):
        sim = CountingSim()
        est = KrigingEstimator(sim, 3, distance=4, nn_min=1)
        rng = np.random.default_rng(7)
        errors = []
        for _ in range(60):
            config = rng.integers(2, 10, size=3)
            out = est.evaluate(config)
            if out.interpolated:
                errors.append(abs(out.value - linear_metric(config)))
        assert errors, "policy never interpolated on a dense sample"
        # Mean interpolation error small relative to the field's spread
        # (values span ~[-10, 10] over the sampled cube).
        assert float(np.mean(errors)) < 1.5


class TestStats:
    def test_counters(self):
        est = KrigingEstimator(CountingSim(), 2, distance=3, nn_min=1)
        for cfg in ([0, 0], [1, 0], [0, 1], [1, 1], [0, 0]):
            est.evaluate(cfg)
        s = est.stats
        assert s.n_simulated + s.n_interpolated + s.n_exact_hits == 5
        assert s.n_exact_hits == 1
        assert 0.0 <= s.interpolated_fraction <= 1.0
        assert s.n_queries == 5

    def test_mean_neighbors_tracks_support(self):
        est = KrigingEstimator(CountingSim(), 2, distance=10, nn_min=1)
        est.evaluate([0, 0])
        est.evaluate([1, 0])
        est.evaluate([0, 1])
        assert est.stats.mean_neighbors == pytest.approx(2.0)

    def test_empty_stats(self):
        est = KrigingEstimator(CountingSim(), 2)
        assert est.stats.interpolated_fraction == 0.0
        assert np.isnan(est.stats.mean_neighbors)


class TestVariogramManagement:
    def test_fixed_model_used_directly(self):
        model = LinearVariogram(2.0)
        est = KrigingEstimator(CountingSim(), 2, variogram=model)
        assert est.variogram is model

    def test_string_spec_fallback_before_min_points(self):
        est = KrigingEstimator(CountingSim(), 2, variogram="spherical", min_fit_points=5)
        est.evaluate([0, 0])
        vg = est.variogram
        assert isinstance(vg, LinearVariogram)

    def test_fit_happens_after_min_points(self):
        est = KrigingEstimator(
            CountingSim(), 2, distance=0, variogram="linear", min_fit_points=3
        )
        # distance=0 forces simulation of every distinct config.
        for cfg in ([0, 0], [3, 0], [0, 3], [3, 3]):
            est.evaluate(cfg)
        vg = est.variogram
        assert isinstance(vg, LinearVariogram)
        assert vg.slope != 1.0  # fitted, not the default prior

    def test_refit_interval(self):
        est = KrigingEstimator(
            CountingSim(), 2, distance=0, variogram="linear",
            min_fit_points=2, refit_interval=2,
        )
        est.evaluate([0, 0])
        est.evaluate([4, 0])
        first = est.variogram
        est.evaluate([0, 4])
        est.evaluate([4, 4])
        second = est.variogram
        assert first is not second

    def test_refit_none_fits_once(self):
        est = KrigingEstimator(
            CountingSim(), 2, distance=0, variogram="linear",
            min_fit_points=2, refit_interval=None,
        )
        est.evaluate([0, 0])
        est.evaluate([4, 0])
        first = est.variogram
        est.evaluate([0, 4])
        est.evaluate([4, 4])
        assert est.variogram is first


class TestGuards:
    def test_max_variance_guard_forces_simulation(self):
        sim = CountingSim()
        est = KrigingEstimator(sim, 2, distance=10, nn_min=1, max_variance=1e-12)
        est.evaluate([0, 0])
        est.evaluate([1, 0])
        out = est.evaluate([5, 5])  # far: high kriging variance
        assert not out.interpolated
        assert len(sim.calls) == 3

    def test_max_neighbors_cap(self):
        est = KrigingEstimator(CountingSim(), 2, distance=20, nn_min=1, max_neighbors=2)
        for cfg in ([0, 0], [1, 0], [0, 1], [2, 0]):
            est.evaluate(cfg)
        out = est.evaluate([1, 1])
        assert out.interpolated
        assert out.n_neighbors == 2

    def test_parameter_validation(self):
        sim = CountingSim()
        with pytest.raises(ValueError):
            KrigingEstimator(sim, 2, distance=-1)
        with pytest.raises(ValueError):
            KrigingEstimator(sim, 2, nn_min=-1)
        with pytest.raises(ValueError):
            KrigingEstimator(sim, 2, min_fit_points=1)
        with pytest.raises(ValueError):
            KrigingEstimator(sim, 2, refit_interval=0)
        with pytest.raises(ValueError):
            KrigingEstimator(sim, 2, variogram="not-a-model")


class TestLifecycle:
    """close() must be idempotent and fire on __del__/atexit so abandoned
    estimators never leak worker processes (the service bugfix)."""

    @staticmethod
    def _field(config):
        c = np.asarray(config, dtype=float)
        return float(c.sum())

    def _two_group_estimator(self, backend):
        est = KrigingEstimator(
            self._field, 2, distance=2.0, variogram="linear",
            n_jobs=2, backend=backend,
        )
        # Two far-apart clusters -> two shared-support groups in one flush
        # -> the long-lived pool is created.
        for x in range(3):
            for y in range(3):
                est.record_measurement([x, y], self._field([x, y]))
                est.record_measurement([x + 50, y + 50], self._field([x + 50, y + 50]))
        est.evaluate_batch([[0.5, 0.5], [0.6, 0.5], [50.5, 50.5], [50.6, 50.5]])
        assert est._executor is not None
        return est

    def test_close_is_idempotent_and_estimator_stays_usable(self):
        est = self._two_group_estimator("thread")
        pool = est._executor
        est.close()
        est.close()  # second close is a no-op
        assert est._executor is None
        assert pool._shutdown
        # Still usable: the pool is rebuilt lazily on the next flush.
        out = est.evaluate_batch([[0.5, 0.5], [0.7, 0.5], [50.5, 50.5], [50.7, 50.5]])
        assert all(o.interpolated for o in out)
        est.close()

    def test_del_releases_the_pool(self):
        import gc

        est = self._two_group_estimator("thread")
        pool = est._executor
        del est
        gc.collect()
        assert pool._shutdown

    def test_process_pool_released_on_close(self):
        est = self._two_group_estimator("process")
        pool = est._executor
        est.close()
        assert pool._shutdown_thread
        assert not pool._processes

    def test_atexit_registry_tracks_live_pools(self):
        from repro.core import estimator as estimator_module

        est = self._two_group_estimator("thread")
        assert est in estimator_module._LIVE_ESTIMATORS
        est.close()
        assert est not in estimator_module._LIVE_ESTIMATORS
        # The atexit sweep tolerates already-closed estimators.
        estimator_module._close_live_estimators()


class TestRecordMeasurementAndRefit:
    @staticmethod
    def _field(config):
        return float(np.asarray(config, dtype=float).sum())

    def test_record_measurement_feeds_cache_and_policy(self):
        est = KrigingEstimator(self._field, 2, distance=3.0, variogram="linear")
        out = est.record_measurement([1, 1], 42.0)
        assert not out.interpolated and out.value == 42.0
        assert est.stats.n_simulated == 1
        assert est.cache.lookup([1, 1]) == 42.0
        est.record_measurement([2, 1], 43.0)
        # The pushed values are support points: nearby queries interpolate.
        assert est.evaluate([1.5, 1.0]).interpolated
        # Exact revisit returns the stored value without re-recording.
        again = est.record_measurement([1, 1], 99.0)
        assert again.exact_hit and again.value == 42.0
        assert est.stats.n_simulated == 2

    def test_refit_variogram_forces_fresh_identification(self):
        rng = np.random.default_rng(3)
        est = KrigingEstimator(
            self._field, 2, distance=4.0, variogram="exponential",
            min_fit_points=4, refit_interval=None,
        )
        for row in rng.integers(0, 8, size=(30, 2)).tolist():
            if est.cache.lookup(row) is None:
                est.record_measurement(row, self._field(row) + rng.normal(0, 0.1))
        first = est.variogram
        assert est.variogram is first  # refit_interval=None: fitted once
        refitted = est.refit_variogram()
        assert refitted is est.variogram
        assert refitted is not first  # a genuinely new identification

    def test_refit_variogram_with_fixed_callable_is_noop(self):
        def fixed(h):
            return np.asarray(h) * 2.0

        est = KrigingEstimator(self._field, 2, variogram=fixed)
        assert est.refit_variogram() is fixed


class TestPoolFailure:
    """A BrokenProcessPool mid-flush must map to a structured recovery: the
    flush completes on the thread backend, the poisoned pool is torn down,
    the counter ticks, and the next flush rebuilds the pool lazily."""

    @staticmethod
    def _field(config):
        return float(np.asarray(config, dtype=float).sum())

    class _PoisonedPool:
        """Quacks like an executor whose workers all died."""

        def __init__(self):
            self.shutdown_calls = []

        def map(self, *args, **kwargs):
            from concurrent.futures.process import BrokenProcessPool

            raise BrokenProcessPool("a child process terminated abruptly")

        def shutdown(self, wait=True, cancel_futures=False):
            self.shutdown_calls.append((wait, cancel_futures))

    def _seeded(self, **kwargs):
        est = KrigingEstimator(
            self._field, 2, distance=2.0, variogram="linear",
            n_jobs=2, backend="process", shm=False, **kwargs,
        )
        for x in range(3):
            for y in range(3):
                est.record_measurement([x, y], self._field([x, y]))
                est.record_measurement(
                    [x + 50, y + 50], self._field([x + 50, y + 50])
                )
        return est

    def test_broken_pool_recovers_on_thread_backend(self):
        queries = [[0.5, 0.5], [0.6, 0.5], [50.5, 50.5], [50.6, 50.5]]
        with self._seeded() as est:
            poisoned = self._PoisonedPool()
            est._executor = poisoned
            out = est.evaluate_batch(queries)

            # The flush completed despite the poisoned pool...
            assert all(o.interpolated for o in out)
            # ...the event is counted, the pool torn down without waiting...
            assert est.stats.pool_failures == 1
            assert poisoned.shutdown_calls == [(False, True)]
            assert est._executor is None

            # ...and the answers match the serial reference bit for bit.
            with self._seeded() as twin:
                twin.n_jobs = 1
                ref = twin.evaluate_batch(queries)
            assert [o.value for o in out] == [o.value for o in ref]
            assert [o.variance for o in out] == [o.variance for o in ref]

            # The next flush rebuilds a real pool lazily.
            from concurrent.futures import ProcessPoolExecutor

            again = est.evaluate_batch([[0.4, 0.5], [0.7, 0.4], [50.4, 50.5], [50.7, 50.4]])
            assert all(o.interpolated for o in again)
            assert isinstance(est._executor, ProcessPoolExecutor)
            assert est.stats.pool_failures == 1  # no new failure


class TestSolvePhaseStats:
    """Per-flush assembly/factorize/backsolve split of the batch engine."""

    @staticmethod
    def _field(config):
        return float(np.asarray(config, dtype=float).sum())

    def test_flushes_accumulate_phase_seconds(self):
        est = KrigingEstimator(self._field, 2, distance=3.0, variogram="linear")
        rng = np.random.default_rng(2)
        pts = np.unique(rng.integers(0, 7, size=(60, 2)), axis=0).astype(float)
        est.evaluate_batch(pts)
        est.evaluate_batch(pts[:15] + 0.25)
        solve = est.stats.solve
        assert solve.n_flushes >= 1
        assert solve.total_seconds > 0.0
        assert solve.assembly_sketch.count == solve.n_flushes
        pairs = dict(solve.as_pairs())
        assert pairs["n_flushes"] == float(solve.n_flushes)
        assert (
            pairs["assembly_seconds"]
            + pairs["factorize_seconds"]
            + pairs["backsolve_seconds"]
        ) == pytest.approx(solve.total_seconds)

    def test_phase_split_round_trips_through_state(self):
        from repro.core.estimator import SolvePhaseStats

        est = KrigingEstimator(self._field, 2, distance=3.0, variogram="linear")
        rng = np.random.default_rng(4)
        pts = np.unique(rng.integers(0, 7, size=(50, 2)), axis=0).astype(float)
        est.evaluate_batch(pts)
        est.evaluate_batch(pts[:10] + 0.3)
        restored = SolvePhaseStats.from_state(est.stats.solve.to_state())
        assert restored.to_state() == est.stats.solve.to_state()
        twin = KrigingEstimator.from_state(self._field, est.to_state())
        assert twin.stats.solve.to_state() == est.stats.solve.to_state()

    def test_no_interpolations_no_flushes(self):
        est = KrigingEstimator(self._field, 2, distance=0.0)
        est.evaluate_batch(np.arange(8.0).reshape(4, 2))
        assert est.stats.solve.n_flushes == 0
        assert est.stats.solve.total_seconds == 0.0
