"""Unit tests for repro.optimization.evaluator and repro.optimization.trace."""

import numpy as np

from repro.core.estimator import KrigingEstimator
from repro.optimization.evaluator import KrigingMetricEvaluator, SimulationEvaluator
from repro.optimization.trace import EvaluationRecord, OptimizationTrace


def metric(w):
    return float(np.sum(np.asarray(w, dtype=float) ** 2))


class TestSimulationEvaluator:
    def test_simulates_new_configs(self):
        ev = SimulationEvaluator(metric)
        assert ev.evaluate([2, 3]) == 13.0
        assert ev.n_simulations == 1

    def test_memoizes_revisits(self):
        calls = []

        def counting(w):
            calls.append(tuple(w))
            return metric(w)

        ev = SimulationEvaluator(counting)
        ev.evaluate([2, 3])
        ev.evaluate([2, 3])
        assert len(calls) == 1
        assert ev.trace.records[1].exact_hit
        assert not ev.trace.records[1].simulated

    def test_phase_tagging(self):
        ev = SimulationEvaluator(metric)
        ev.evaluate([1, 1], phase="min")
        ev.evaluate([2, 1], phase="greedy")
        assert [r.phase for r in ev.trace.records] == ["min", "greedy"]


class TestKrigingMetricEvaluator:
    def test_wraps_estimator_outcomes(self):
        est = KrigingEstimator(metric, 2, distance=3, nn_min=1)
        ev = KrigingMetricEvaluator(est)
        ev.evaluate([4, 4])
        ev.evaluate([5, 4])
        ev.evaluate([4, 5])
        records = ev.trace.records
        assert records[0].simulated and records[1].simulated
        assert not records[2].simulated
        assert records[2].n_neighbors == 2

    def test_simulation_counter_tracks_estimator(self):
        est = KrigingEstimator(metric, 2, distance=3, nn_min=1)
        ev = KrigingMetricEvaluator(est)
        for cfg in ([0, 0], [1, 0], [0, 1], [1, 1]):
            ev.evaluate(cfg)
        assert ev.n_simulations == est.stats.n_simulated


class TestOptimizationTrace:
    def _trace(self):
        trace = OptimizationTrace()
        trace.append(EvaluationRecord((1, 2), 10.0, simulated=True))
        trace.append(EvaluationRecord((1, 3), 12.0, simulated=False, n_neighbors=2))
        trace.append(EvaluationRecord((1, 2), 10.0, simulated=False, exact_hit=True))
        trace.record_decision(1)
        return trace

    def test_matrix_views(self):
        trace = self._trace()
        np.testing.assert_array_equal(
            trace.configurations, [[1, 2], [1, 3], [1, 2]]
        )
        np.testing.assert_allclose(trace.values, [10.0, 12.0, 10.0])

    def test_counters(self):
        trace = self._trace()
        assert len(trace) == 3
        assert trace.n_simulated == 1
        assert trace.n_interpolated == 2

    def test_unique_first_visits(self):
        unique = self._trace().unique_first_visits()
        assert len(unique) == 2
        np.testing.assert_array_equal(unique.configurations, [[1, 2], [1, 3]])
        assert unique.decisions == [1]

    def test_empty_trace(self):
        trace = OptimizationTrace()
        assert len(trace) == 0
        assert trace.configurations.shape == (0, 0)
        assert trace.values.shape == (0,)
