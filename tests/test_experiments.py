"""Tests for the experiment drivers (registry, Table I, Figure 1, timing)."""

import numpy as np
import pytest

from repro.experiments.figure1 import fir_noise_surface, render_surface, surface_is_monotone
from repro.experiments.registry import BENCHMARK_NAMES, build_benchmark
from repro.experiments.reporting import format_table1
from repro.experiments.table1 import DISTANCES, Table1Row, rows_for_setup
from repro.experiments.timing import (
    PAPER_SIMULATION_TIMES,
    measure_kriging_time,
    measure_simulation_time,
    project_speedup,
)


class TestRegistry:
    def test_all_benchmarks_buildable_small(self):
        for name in BENCHMARK_NAMES:
            setup = build_benchmark(name, "small")
            assert setup.name == name
            assert setup.problem.num_variables >= 2

    def test_paper_nv_values(self):
        expected = {"fir": 2, "iir": 5, "fft": 10, "hevc": 23, "squeezenet": 10}
        for name, nv in expected.items():
            assert build_benchmark(name, "small").problem.num_variables == nv

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown benchmark"):
            build_benchmark("wavelet", "small")

    def test_extra_dct_benchmark_available(self):
        setup = build_benchmark("dct", "small")
        assert setup.problem.num_variables == 6

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError, match="unknown scale"):
            build_benchmark("fir", "huge")

    def test_trajectory_memoized(self, fir_setup):
        assert fir_setup.record_trajectory() is fir_setup.record_trajectory()

    def test_reference_result_satisfies_constraint(self, fir_setup):
        result = fir_setup.reference_result
        assert result.satisfied


class TestTable1:
    def test_rows_for_fir(self, fir_setup):
        rows = rows_for_setup(fir_setup, distances=(2, 3))
        assert len(rows) == 2
        for row in rows:
            assert row.benchmark == "fir"
            assert row.nv == 2
            assert 0.0 <= row.p_percent <= 100.0

    def test_p_grows_with_distance(self, iir_setup):
        rows = rows_for_setup(iir_setup, distances=DISTANCES)
        p = [row.p_percent for row in rows]
        assert all(a <= b + 1e-9 for a, b in zip(p, p[1:]))

    def test_fft_interpolates_majority_at_d2(self, fft_setup):
        """Table I headline: large-Nv benchmarks interpolate most configs."""
        (row,) = rows_for_setup(fft_setup, distances=(2,))
        assert row.p_percent > 50.0

    def test_errors_reasonable_for_noise_metric(self, iir_setup):
        (row,) = rows_for_setup(iir_setup, distances=(2,))
        assert row.mean_error < 2.0  # equivalent bits

    def test_nn_min_ablation_reduces_p(self, fft_setup):
        (base,) = rows_for_setup(fft_setup, distances=(3,), nn_min=1)
        (strict,) = rows_for_setup(fft_setup, distances=(3,), nn_min=2)
        assert strict.p_percent <= base.p_percent + 1e-9

    def test_formatting(self, fir_setup):
        rows = rows_for_setup(fir_setup, distances=(2, 3))
        text = format_table1(rows)
        assert "fir" in text
        assert "p(%)" in text
        assert len(text.splitlines()) >= 4


class TestFigure1:
    @pytest.fixture(scope="class")
    def surface(self):
        return fir_noise_surface(word_lengths=range(8, 14), n_samples=256)

    def test_shape(self, surface):
        s, grid = surface
        assert s.shape == (6, 6)
        assert grid == list(range(8, 14))

    def test_monotone_staircase(self, surface):
        s, _ = surface
        assert surface_is_monotone(s)

    def test_dynamic_range_spans_tens_of_db(self, surface):
        s, _ = surface
        assert s.max() - s.min() > 20.0

    def test_render(self, surface):
        s, grid = surface
        text = render_surface(s, grid)
        assert "w_mul" in text
        assert len(text.splitlines()) == 7

    def test_render_validates_shape(self, surface):
        s, grid = surface
        with pytest.raises(ValueError):
            render_surface(s[:3], grid)


class TestTiming:
    def test_kriging_time_fast(self):
        t = measure_kriging_time(repetitions=50)
        assert 0.0 < t < 0.05  # a solve on <=10 points is sub-millisecond

    def test_simulation_time_measured(self):
        t = measure_simulation_time(lambda c: float(np.sum(c)), np.arange(4))
        assert t >= 0.0

    def test_speedup_model(self):
        proj = project_speedup("fir", 0.5, t_kriging=0.0)
        assert proj.speedup == pytest.approx(2.0)
        assert proj.ideal_speedup == pytest.approx(2.0)

    def test_speedup_with_costly_kriging(self):
        proj = project_speedup("fir", 0.5, t_simulation=1.0, t_kriging=1.0)
        assert proj.speedup == pytest.approx(1.0)

    def test_paper_times_available(self):
        assert set(PAPER_SIMULATION_TIMES) == set(BENCHMARK_NAMES)

    def test_paper_projection_factors(self):
        # The paper's arithmetic: ~90% interpolation => ~10x faster.
        proj = project_speedup("hevc", 0.9, t_kriging=1e-4)
        assert proj.speedup == pytest.approx(10.0, rel=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            project_speedup("fir", 1.5)
        with pytest.raises(ValueError):
            project_speedup("unknown", 0.5)
        with pytest.raises(ValueError):
            measure_kriging_time(repetitions=0)


class TestTable1Row:
    def test_from_stats_roundtrip(self, fir_setup):
        from repro.experiments.replay import replay_trace

        stats = replay_trace(fir_setup.record_trajectory(), benchmark="fir", distance=2)
        row = Table1Row.from_stats(stats, metric_label="Noise Power", nv=2)
        assert row.p_percent == stats.p_percent
        assert row.distance == 2
