"""Unit tests for repro.core.factor_cache (the factorization-reuse layer)."""

import numpy as np
import pytest

from repro.core.distances import cross_distances
from repro.core.estimator import KrigingEstimator
from repro.core.factor_cache import FactorCache, FactorCacheStats, GammaFactor
from repro.core.kriging import _bordered_system, _solve
from repro.core.models import ExponentialVariogram, LinearVariogram


VARIOGRAM = ExponentialVariogram(sill=25.0, range_=8.0)


def _cloud(n=80, nv=4, seed=0):
    """Continuous support points: strictly-PD Gamma systems."""
    rng = np.random.default_rng(seed)
    return rng.uniform(0.0, 10.0, size=(n, nv)), rng


def _reference_solution(points, variogram, gamma_queries):
    system = _bordered_system(points, variogram, "l1")
    rhs = np.vstack([gamma_queries, np.ones((1, gamma_queries.shape[1]))])
    return _solve(system, rhs)


def _signature(rng, n_points, size):
    return tuple(sorted(rng.choice(n_points, size=size, replace=False).tolist()))


class TestFactorSolve:
    def test_fresh_factor_matches_plain_solver(self):
        points, rng = _cloud()
        cache = FactorCache()
        signature = _signature(rng, 80, 30)
        factor = cache.factor_for(signature, points, VARIOGRAM, "l1")
        assert factor is not None
        assert cache.stats.fresh == 1

        queries = rng.uniform(0.0, 10.0, size=(6, 4))
        gamma_queries = np.asarray(
            VARIOGRAM(cross_distances(points[factor.rows], queries, "l1"))
        )
        solution = factor.solve(gamma_queries)
        assert solution is not None
        reference = _reference_solution(points[factor.rows], VARIOGRAM, gamma_queries)
        np.testing.assert_allclose(solution, reference, rtol=1e-7, atol=1e-9)

    def test_derived_factor_matches_plain_solver(self):
        points, rng = _cloud(seed=1)
        cache = FactorCache()
        base_signature = _signature(rng, 80, 30)
        cache.factor_for(base_signature, points, VARIOGRAM, "l1")

        # Add two points, drop one: bridged by rank-1 edits, not refactorized.
        target = set(base_signature)
        added = sorted(set(range(80)) - target)[:2]
        derived_signature = tuple(sorted((target - {base_signature[3]}) | set(added)))
        factor = cache.factor_for(derived_signature, points, VARIOGRAM, "l1")
        assert factor is not None
        assert cache.stats.updates == 1
        assert cache.stats.update_points == 3
        assert cache.stats.fresh == 1  # only the base was factorized

        queries = rng.uniform(0.0, 10.0, size=(5, 4))
        gamma_queries = np.asarray(
            VARIOGRAM(cross_distances(points[factor.rows], queries, "l1"))
        )
        solution = factor.solve(gamma_queries)
        assert solution is not None
        reference = _reference_solution(points[factor.rows], VARIOGRAM, gamma_queries)
        np.testing.assert_allclose(solution, reference, rtol=1e-7, atol=1e-9)

    def test_factor_rows_are_signature_permutation(self):
        points, rng = _cloud(seed=2)
        cache = FactorCache()
        base = _signature(rng, 80, 20)
        cache.factor_for(base, points, VARIOGRAM, "l1")
        extended = tuple(sorted(set(base) | set(_signature(rng, 80, 2))))
        factor = cache.factor_for(extended, points, VARIOGRAM, "l1")
        assert factor is not None
        assert sorted(factor.rows.tolist()) == sorted(extended)


class TestCachePolicy:
    def test_exact_hit_returns_same_object(self):
        points, rng = _cloud(seed=3)
        cache = FactorCache()
        signature = _signature(rng, 80, 12)
        first = cache.factor_for(signature, points, VARIOGRAM, "l1")
        second = cache.factor_for(signature, points, VARIOGRAM, "l1")
        assert second is first
        assert cache.stats.hits == 1

    def test_min_support_bypass(self):
        points, rng = _cloud(seed=4)
        cache = FactorCache(min_support=8)
        assert cache.factor_for((0, 1, 2), points, VARIOGRAM, "l1") is None
        assert cache.stats.requests == 0

    def test_lru_eviction(self):
        points, rng = _cloud(seed=5)
        cache = FactorCache(capacity=2, max_update_points=0)
        signatures = [_signature(rng, 80, 10 + i) for i in range(3)]
        for signature in signatures:
            cache.factor_for(signature, points, VARIOGRAM, "l1")
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        # The evicted (oldest) signature refactorizes; the survivors hit.
        cache.factor_for(signatures[-1], points, VARIOGRAM, "l1")
        assert cache.stats.hits == 1
        cache.factor_for(signatures[0], points, VARIOGRAM, "l1")
        assert cache.stats.fresh == 4

    def test_invalidate_clears_everything(self):
        points, rng = _cloud(seed=6)
        cache = FactorCache()
        signature = _signature(rng, 80, 15)
        cache.factor_for(signature, points, VARIOGRAM, "l1")
        cache.invalidate()
        assert len(cache) == 0
        assert cache.stats.invalidations == 1
        assert cache._row_index == {} and cache._by_size == {} and cache._stamps == {}
        cache.factor_for(signature, points, VARIOGRAM, "l1")
        assert cache.stats.fresh == 2  # refactorized, not a hit

    def test_inverted_index_tracks_store_hit_evict(self):
        points, rng = _cloud(seed=11)
        cache = FactorCache(capacity=3, max_update_points=0)
        signatures = [_signature(rng, 80, 12 + i) for i in range(4)]
        for signature in signatures:
            cache.factor_for(signature, points, VARIOGRAM, "l1")
        # Oldest evicted: its rows are gone from the inverted index.
        assert signatures[0] not in cache._stamps
        for row, sigs in cache._row_index.items():
            assert all(sig in cache._entries for sig in sigs)
            assert all(row in sig for sig in sigs)
        for size, sigs in cache._by_size.items():
            assert all(len(sig) == size and sig in cache._entries for sig in sigs)
        # A hit refreshes the recency stamp.
        before = cache._stamps[signatures[1]]
        cache.factor_for(signatures[1], points, VARIOGRAM, "l1")
        assert cache._stamps[signatures[1]] > before

    def test_rank_deficient_gamma_fails_and_is_memoized(self):
        """The piecewise-linear variogram on a dense 2-D lattice patch has a
        rank-deficient Gamma: no PD shift exists, the cache memoizes the
        failure, and the solve path falls back (covered elsewhere)."""
        grid = np.stack(
            np.meshgrid(np.arange(6.0), np.arange(6.0)), axis=-1
        ).reshape(-1, 2)
        cache = FactorCache()
        signature = tuple(range(36))
        linear = LinearVariogram(1.0)
        assert cache.factor_for(signature, grid, linear, "l1") is None
        assert cache.stats.failures == 1
        assert cache.factor_for(signature, grid, linear, "l1") is None
        assert cache.stats.failures == 1  # memoized, no second attempt

    def test_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            FactorCache(capacity=0)
        with pytest.raises(ValueError, match="max_update_points"):
            FactorCache(max_update_points=-1)


class TestEstimatorIntegration:
    @staticmethod
    def _field(config):
        c = np.asarray(config, dtype=float)
        return float(c @ np.resize([1.0, -2.0, 0.5], c.size) + 3.0)

    def _seeded(self, rng, **kwargs):
        estimator = KrigingEstimator(
            self._field, 3, distance=6.0, nn_min=1, **kwargs
        )
        support = rng.uniform(0.0, 8.0, size=(120, 3))
        for point in support:
            row = estimator.cache.add(point, self._field(point))
            estimator.neighbor_index.insert(point, row)
        return estimator, support

    def test_reuse_on_off_same_estimates(self):
        rng = np.random.default_rng(8)
        queries = rng.uniform(1.0, 7.0, size=(40, 3))
        values = {}
        for enabled in (True, False):
            estimator, _ = self._seeded(
                np.random.default_rng(8),
                variogram=VARIOGRAM,
                factor_cache=enabled,
            )
            values[enabled] = [o.value for o in estimator.evaluate_batch(queries)]
            if enabled:
                assert estimator.stats.factor.requests > 0
        np.testing.assert_allclose(values[True], values[False], rtol=1e-9, atol=1e-12)

    def test_refit_invalidates_cached_factors(self):
        """A variogram refit must drop every cached factorization: with
        ``refit_interval=1`` each simulation refits, so estimates must match
        the no-reuse run exactly (no stale-variogram factors) and the cache
        must record one invalidation per fit."""
        rng = np.random.default_rng(9)
        # Alternate interpolation bursts with out-of-range queries that force
        # simulations (and therefore refits) mid-stream.
        near = rng.uniform(1.0, 7.0, size=(30, 3))
        far = rng.uniform(40.0, 60.0, size=(4, 3))
        sweep = np.vstack([near[:15], far[:2], near[15:], far[2:]])

        outcomes = {}
        stats = {}
        for enabled in (True, False):
            estimator, _ = self._seeded(
                np.random.default_rng(9),
                variogram="exponential",
                min_fit_points=4,
                refit_interval=1,
                factor_cache=enabled,
            )
            outcomes[enabled] = [o.value for o in estimator.evaluate_batch(sweep)]
            stats[enabled] = estimator.stats
        np.testing.assert_allclose(
            outcomes[True], outcomes[False], rtol=1e-9, atol=1e-12
        )
        factor = stats[True].factor
        # Refits are lazy (one per variogram access after new simulations),
        # so each far burst produces exactly one invalidation event.
        assert factor.invalidations >= 2
        assert stats[True].n_simulated == stats[False].n_simulated
        assert stats[True].n_simulated > 0

    def test_factor_stats_reachable_via_estimator(self):
        estimator, _ = self._seeded(np.random.default_rng(10), variogram=VARIOGRAM)
        assert isinstance(estimator.stats.factor, FactorCacheStats)
        assert estimator.factor_cache is not None
        assert estimator.factor_cache.stats is estimator.stats.factor

    def test_disabled_cache_keeps_zero_counters(self):
        estimator, _ = self._seeded(
            np.random.default_rng(11), variogram=VARIOGRAM, factor_cache=False
        )
        rng = np.random.default_rng(12)
        estimator.evaluate_batch(rng.uniform(1.0, 7.0, size=(10, 3)))
        assert estimator.factor_cache is None
        assert estimator.stats.factor.requests == 0

    def test_custom_cache_instance_adopted(self):
        cache = FactorCache(capacity=4, min_support=2)
        estimator, _ = self._seeded(
            np.random.default_rng(13), variogram=VARIOGRAM, factor_cache=cache
        )
        assert estimator.factor_cache is cache
        assert estimator.stats.factor is cache.stats


class TestByteBudget:
    def test_byte_budget_evicts_but_keeps_most_recent(self):
        points, rng = _cloud(n=120, seed=14)
        # Each 40-point factor holds two 40x40 float64 blocks (~25.6 kB);
        # a 30 kB budget fits exactly one.
        cache = FactorCache(capacity=64, max_bytes=30_000, max_update_points=0)
        first = _signature(rng, 120, 40)
        second = tuple(sorted(set(range(120)) - set(first)))[:40]
        cache.factor_for(first, points, VARIOGRAM, "l1")
        assert cache.nbytes > 0
        cache.factor_for(tuple(sorted(second)), points, VARIOGRAM, "l1")
        assert len(cache) == 1  # over budget: LRU evicted
        assert cache.stats.evictions == 1
        assert cache.nbytes <= 30_000

    def test_oversized_single_factor_still_cached(self):
        points, rng = _cloud(n=60, seed=15)
        cache = FactorCache(max_bytes=1_000)  # smaller than any 30-pt factor
        signature = _signature(rng, 60, 30)
        factor = cache.factor_for(signature, points, VARIOGRAM, "l1")
        assert factor is not None
        assert len(cache) == 1  # the most recent factor always survives

    def test_invalidate_resets_bytes(self):
        points, rng = _cloud(seed=16)
        cache = FactorCache()
        cache.factor_for(_signature(rng, 80, 20), points, VARIOGRAM, "l1")
        cache.invalidate()
        assert cache.nbytes == 0

    def test_validation(self):
        with pytest.raises(ValueError, match="max_bytes"):
            FactorCache(max_bytes=0)


class TestStatsPairsRoundtrip:
    def test_from_pairs_preserves_rate(self):
        stats = FactorCacheStats(hits=6, updates=10, fresh=4, failures=0)
        rebuilt = FactorCacheStats.from_pairs(stats.as_pairs())
        assert rebuilt.reuse_rate == stats.reuse_rate == pytest.approx(0.8)
        assert rebuilt.requests == stats.requests == 20

    def test_from_pairs_empty_is_nan(self):
        rebuilt = FactorCacheStats.from_pairs(())
        assert rebuilt.requests == 0
        assert np.isnan(rebuilt.reuse_rate)


class TestInvertedIndexEquivalence:
    """The inverted row-signature index must pick exactly the factor the old
    linear LRU scan picked — smallest symmetric difference, most recently
    used on ties — including at capacities far beyond the default."""

    @staticmethod
    def _reference_closest(cache, signature):
        """The pre-index implementation: a reversed scan of the whole LRU."""
        limit = cache._update_limit(signature)
        if limit == 0:
            return None
        target = frozenset(signature)
        best = None
        best_distance = limit + 1
        for cached_signature, factor in reversed(cache._entries.items()):
            distance = len(target.symmetric_difference(frozenset(cached_signature)))
            if 0 < distance < best_distance:
                best, best_distance = factor, distance
                if distance <= 1:
                    break
        return best

    @staticmethod
    def _fake_factor(signature, cache):
        """A solve-free stand-in: `_closest` only reads rows/identity."""
        rows = np.asarray(signature, dtype=np.int64)
        return GammaFactor(rows, np.zeros((2, 2)), 1.0, np.eye(2), stats=cache.stats)

    def _populated(self, rng, *, capacity, n_rows, n_stored, sizes, **kwargs):
        cache = FactorCache(capacity=capacity, **kwargs)
        for _ in range(n_stored):
            size = int(rng.integers(*sizes))
            signature = tuple(sorted(rng.choice(n_rows, size=size, replace=False).tolist()))
            if signature not in cache._entries:
                cache._store(signature, self._fake_factor(signature, cache))
        # Shuffle recency so MRU order differs from insertion order.
        stored = list(cache._entries)
        for signature in rng.permutation(len(stored))[: len(stored) // 2]:
            key = stored[int(signature)]
            cache._entries.move_to_end(key)
            cache._touch(key)
        return cache

    def _queries(self, rng, cache, n_rows, n_queries):
        stored = list(cache._entries)
        queries = []
        for _ in range(n_queries):
            mode = rng.integers(0, 3)
            if mode == 0 and stored:  # perturbation of a stored signature
                base = set(stored[int(rng.integers(0, len(stored)))])
                for row in rng.choice(n_rows, size=int(rng.integers(1, 6)), replace=False):
                    base.symmetric_difference_update({int(row)})
                if base:
                    queries.append(tuple(sorted(base)))
            elif mode == 1:  # small signature (exercises the disjoint path)
                size = int(rng.integers(4, 7))
                queries.append(
                    tuple(sorted(rng.choice(n_rows, size=size, replace=False).tolist()))
                )
            else:  # unrelated random signature
                size = int(rng.integers(8, 40))
                queries.append(
                    tuple(sorted(rng.choice(n_rows, size=size, replace=False).tolist()))
                )
        return queries

    @pytest.mark.parametrize("max_update_points", [None, 24])
    def test_capacity_512_matches_linear_scan(self, max_update_points):
        rng = np.random.default_rng(42)
        cache = self._populated(
            rng,
            capacity=512,
            n_rows=300,
            n_stored=700,  # forces evictions past capacity
            sizes=(4, 40),
            max_update_points=max_update_points,
        )
        assert len(cache) == 512
        queries = self._queries(rng, cache, n_rows=300, n_queries=300)
        for query in queries:
            if query in cache._entries:
                continue  # factor_for answers exact hits before _closest
            assert cache._closest(query) is self._reference_closest(cache, query), query

    def test_small_cache_matches_linear_scan(self):
        rng = np.random.default_rng(7)
        cache = self._populated(
            rng, capacity=16, n_rows=60, n_stored=40, sizes=(4, 20),
            max_update_points=30,
        )
        for query in self._queries(rng, cache, n_rows=60, n_queries=200):
            if query in cache._entries:
                continue
            assert cache._closest(query) is self._reference_closest(cache, query), query
