"""ChaosProxy: each fault kind produces its documented failure shape."""

import asyncio
import time

import pytest

from repro.service.client import AsyncServiceClient
from repro.service.protocol import ProtocolError
from repro.service.server import JsonLineServer
from repro.testing import ChaosProxy, Fault
from repro.testing.faults import FAULT_KINDS, _garble


class EchoService(JsonLineServer):
    async def dispatch(self, request):
        return {"echo": request.get("payload"), "op": request.get("op")}


def run_proxied(body):
    """``await body(client, proxy)`` against an EchoService behind a proxy."""

    async def main():
        service = EchoService()
        serve_task = asyncio.create_task(service.serve("127.0.0.1", 0))
        while service.address is None:
            await asyncio.sleep(0.005)
        proxy = ChaosProxy(*service.address)
        await proxy.start()
        try:
            client = await AsyncServiceClient.connect(*proxy.address)
            try:
                return await body(client, proxy)
            finally:
                await client.close()
        finally:
            await proxy.stop()
            service.stop()
            await asyncio.wait_for(serve_task, 10)

    return asyncio.run(main())


class TestFaultValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            Fault("gremlins")

    def test_unknown_direction_rejected(self):
        with pytest.raises(ValueError, match="unknown direction"):
            Fault("latency", direction="sideways")

    def test_direction_filter(self):
        fault = Fault("latency", direction="to_client")
        assert fault.applies("to_client")
        assert not fault.applies("to_server")
        assert Fault("latency").applies("to_server")

    def test_garble_preserves_newlines_and_never_forges_them(self):
        line = b'{"id": 1, "op": "Ping"}\n'  # 'P' ^ 0x5A == 0x0A: the trap
        garbled = _garble(line)
        assert garbled.count(b"\n") == line.count(b"\n")
        assert garbled.endswith(b"\n")
        assert garbled != line


class TestFaultKinds:
    def test_passthrough_without_fault(self):
        async def body(client, proxy):
            result = await client.request("work", payload="x")
            assert result == {"echo": "x", "op": "work"}
            assert proxy.connections_seen == 1
            assert proxy.injected == {}

        run_proxied(body)

    def test_latency_delays_but_serves(self):
        async def body(client, proxy):
            proxy.set_fault(Fault("latency", latency_ms=120.0))
            t0 = time.perf_counter()
            result = await client.request("work", payload="x")
            assert result["echo"] == "x"
            assert time.perf_counter() - t0 >= 0.1
            assert proxy.injected.get("latency", 0) >= 1

        run_proxied(body)

    def test_blackhole_hangs_until_timeout(self):
        async def body(client, proxy):
            proxy.set_fault(Fault("blackhole"))
            t0 = time.perf_counter()
            with pytest.raises((asyncio.TimeoutError, TimeoutError)):
                await client.request("work", payload="x", timeout=0.3)
            assert time.perf_counter() - t0 < 2.0  # bounded, not a hang
            # Heal: the same connection carries traffic again.
            proxy.set_fault(None)
            assert (await client.request("work", payload="y"))["echo"] == "y"

        run_proxied(body)

    def test_reset_surfaces_connection_error(self):
        async def body(client, proxy):
            proxy.set_fault(Fault("reset"))
            with pytest.raises((ConnectionError, asyncio.TimeoutError, TimeoutError)):
                await client.request("work", payload="x", timeout=2.0)

        run_proxied(body)

    def test_garbled_response_breaks_the_client(self):
        async def body(client, proxy):
            # Garble only the response path: the server sees a clean
            # request, the client receives junk.
            proxy.set_fault(Fault("garble", direction="to_client"))
            with pytest.raises((ProtocolError, ConnectionError)):
                await client.request("work", payload="x", timeout=2.0)
            assert client.is_broken

        run_proxied(body)

    def test_truncate_kills_mid_frame(self):
        async def body(client, proxy):
            proxy.set_fault(Fault("truncate", direction="to_client"))
            with pytest.raises(
                (ProtocolError, ConnectionError, asyncio.TimeoutError, TimeoutError)
            ):
                await client.request("work", payload="x" * 2000, timeout=2.0)

        run_proxied(body)

    def test_drip_is_slow_but_complete(self):
        async def body(client, proxy):
            proxy.set_fault(
                Fault("drip", direction="to_client", drip_bytes=8, drip_interval_ms=2.0)
            )
            result = await client.request("work", payload="x", timeout=10.0)
            assert result["echo"] == "x"

        run_proxied(body)

    def test_every_kind_is_exercised_above(self):
        exercised = {"latency", "blackhole", "reset", "garble", "truncate", "drip"}
        assert exercised == set(FAULT_KINDS)
