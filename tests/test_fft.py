"""Unit tests for the FFT benchmark (repro.signal.fft)."""

import numpy as np
import pytest

from repro.signal.fft import FFTBenchmark, bit_reverse_permutation


@pytest.fixture(scope="module")
def fft():
    return FFTBenchmark(n_frames=8, seed=2)


class TestBitReversal:
    def test_known_8_point(self):
        np.testing.assert_array_equal(
            bit_reverse_permutation(8), [0, 4, 2, 6, 1, 5, 3, 7]
        )

    def test_is_involution(self):
        perm = bit_reverse_permutation(64)
        np.testing.assert_array_equal(perm[perm], np.arange(64))

    def test_validation(self):
        with pytest.raises(ValueError):
            bit_reverse_permutation(48)
        with pytest.raises(ValueError):
            bit_reverse_permutation(1)


class TestBenchmark:
    def test_nv_is_ten(self, fft):
        assert fft.NUM_VARIABLES == 10
        assert len(fft.VARIABLE_NAMES) == 10

    def test_reference_is_scaled_fft(self, fft):
        expected = np.fft.fft(fft.inputs, axis=1) / 64
        np.testing.assert_allclose(fft.reference(), expected, atol=1e-12)

    def test_high_precision_converges_to_reference(self, fft):
        out = fft.simulate([26] * 10)
        assert np.max(np.abs(out - fft.reference())) < 1e-5

    def test_monotone_improvement(self, fft):
        assert fft.noise_power_db([8] * 10) > fft.noise_power_db([14] * 10) + 20

    def test_stage_wordlengths_matter(self, fft):
        base = fft.noise_power_db([14] * 10)
        for stage in range(6):
            w = [14] * 10
            w[stage] = 6
            assert fft.noise_power_db(w) > base + 3, f"stage {stage} inert"

    def test_twiddle_wordlengths_matter(self, fft):
        base = fft.noise_power_db([14] * 10)
        for tw in range(6, 10):
            w = [14] * 10
            w[tw] = 4
            assert fft.noise_power_db(w) > base + 3, f"twiddle var {tw} inert"

    def test_wrong_length_rejected(self, fft):
        with pytest.raises(ValueError, match="expected 10"):
            fft.simulate([8] * 9)

    def test_deterministic(self, fft):
        w = [9, 10, 11, 12, 13, 14, 9, 10, 11, 12]
        np.testing.assert_array_equal(fft.simulate(w), fft.simulate(w))

    def test_parseval_energy_scaling(self, fft):
        # With the 1/2-per-stage scaling, output energy = input energy / 64.
        ref = fft.reference()
        in_energy = np.sum(np.abs(fft.inputs) ** 2, axis=1)
        out_energy = np.sum(np.abs(ref) ** 2, axis=1) * 64
        np.testing.assert_allclose(out_energy, in_energy, rtol=1e-10)
