"""Unit tests for the FIR benchmark (repro.signal.fir)."""

import numpy as np
import pytest

from repro.signal.fir import FIRBenchmark, design_lowpass_fir


@pytest.fixture(scope="module")
def fir():
    return FIRBenchmark(n_samples=512, seed=0)


class TestDesign:
    def test_unit_dc_gain(self):
        taps = design_lowpass_fir(64, 0.2)
        assert np.sum(taps) == pytest.approx(1.0)

    def test_linear_phase_symmetry(self):
        taps = design_lowpass_fir(64, 0.2)
        np.testing.assert_allclose(taps, taps[::-1], atol=1e-12)

    def test_lowpass_attenuates_high_frequencies(self):
        taps = design_lowpass_fir(64, 0.1)
        response = np.abs(np.fft.rfft(taps, 1024))
        passband = response[: int(0.05 * 1024)]
        stopband = response[int(0.3 * 1024) :]
        assert passband.min() > 0.9
        assert stopband.max() < 0.01

    def test_validation(self):
        with pytest.raises(ValueError):
            design_lowpass_fir(1, 0.2)
        with pytest.raises(ValueError):
            design_lowpass_fir(8, 0.5)
        with pytest.raises(ValueError):
            design_lowpass_fir(8, 0.0)


class TestReference:
    def test_reference_matches_numpy_convolution(self, fir):
        expected = np.convolve(fir.inputs, fir.q_coefficients)[: len(fir.inputs)]
        np.testing.assert_allclose(fir.reference(), expected, atol=1e-12)

    def test_reference_is_cached_not_recomputed(self, fir):
        assert fir.reference() is fir.reference()


class TestSimulate:
    def test_high_precision_close_to_reference(self, fir):
        out = fir.simulate([24, 24])
        error = np.max(np.abs(out - fir.reference()))
        assert error < 1e-5

    def test_monotone_improvement_with_bits(self, fir):
        noisy = fir.noise_power_db([8, 8])
        mid = fir.noise_power_db([12, 12])
        fine = fir.noise_power_db([16, 16])
        assert noisy > mid > fine

    def test_mul_plateau(self, fir):
        # With a very fine accumulator the noise is multiplier-limited.
        a = fir.noise_power_db([10, 18])
        b = fir.noise_power_db([10, 20])
        assert a == pytest.approx(b, abs=0.2)

    def test_wrong_length_rejected(self, fir):
        with pytest.raises(ValueError, match="expected 2"):
            fir.simulate([8, 8, 8])

    def test_non_integer_rejected(self, fir):
        with pytest.raises(ValueError):
            fir.simulate([8.5, 8.0])

    def test_deterministic(self, fir):
        np.testing.assert_array_equal(fir.simulate([9, 11]), fir.simulate([9, 11]))

    def test_guard_interval_validation(self):
        with pytest.raises(ValueError, match="guard_interval"):
            FIRBenchmark(n_samples=64, guard_interval=0)


class TestSurface:
    def test_shape_and_monotonicity(self, fir):
        grid = range(8, 13)
        surface = fir.surface(grid)
        assert surface.shape == (5, 5)
        # Noise power never increases by more than ripple when adding bits.
        assert np.all(np.diff(surface, axis=0) <= 1.0)
        assert np.all(np.diff(surface, axis=1) <= 1.0)

    def test_empty_range_rejected(self, fir):
        with pytest.raises(ValueError, match="empty"):
            fir.surface(range(8, 8))
