"""Unit tests for repro.core.fitting (variogram identification)."""

import numpy as np
import pytest

from repro.core.fitting import MODEL_KINDS, fit_variogram, select_variogram
from repro.core.models import (
    ExponentialVariogram,
    GaussianVariogram,
    LinearVariogram,
    SphericalVariogram,
)
from repro.core.variogram import EmpiricalVariogram


def synth_empirical(model, lags, counts=None):
    """Empirical variogram sampled exactly from a model."""
    lags = np.asarray(lags, dtype=float)
    counts = (
        np.full(lags.size, 10, dtype=np.int64)
        if counts is None
        else np.asarray(counts, dtype=np.int64)
    )
    return EmpiricalVariogram(
        lags=lags, gammas=np.asarray(model(lags), dtype=float), counts=counts
    )


class TestLinearFit:
    def test_recovers_slope(self):
        emp = synth_empirical(LinearVariogram(slope=2.5), np.arange(1, 8))
        fit = fit_variogram(emp, "linear")
        assert fit.kind == "linear"
        assert fit.model.slope == pytest.approx(2.5, rel=1e-6)
        assert fit.weighted_sse == pytest.approx(0.0, abs=1e-9)

    def test_weights_matter(self):
        # Two lags, heavily weighted first: slope pulled toward first ratio.
        emp = EmpiricalVariogram(
            lags=np.array([1.0, 2.0]),
            gammas=np.array([1.0, 10.0]),
            counts=np.array([1000, 1]),
        )
        fit = fit_variogram(emp, "linear")
        assert fit.model.slope == pytest.approx(1.0, rel=0.1)


class TestBoundedFits:
    @pytest.mark.parametrize(
        "cls,kind",
        [
            (SphericalVariogram, "spherical"),
            (ExponentialVariogram, "exponential"),
            (GaussianVariogram, "gaussian"),
        ],
    )
    def test_recovers_parameters(self, cls, kind):
        truth = cls(sill=3.0, range_=6.0)
        emp = synth_empirical(truth, np.arange(1, 13))
        fit = fit_variogram(emp, kind)
        assert fit.kind == kind
        h = np.linspace(0.5, 12, 30)
        np.testing.assert_allclose(
            np.asarray(fit.model(h)), np.asarray(truth(h)), rtol=0.05, atol=0.05
        )

    def test_too_few_lags_falls_back_to_linear(self):
        emp = synth_empirical(SphericalVariogram(sill=1.0, range_=4.0), [1.0, 2.0])
        fit = fit_variogram(emp, "spherical")
        assert fit.kind == "linear"


class TestPowerFit:
    def test_recovers_exponent(self):
        from repro.core.models import PowerVariogram

        truth = PowerVariogram(scale=0.5, exponent=1.5)
        emp = synth_empirical(truth, np.arange(1, 10))
        fit = fit_variogram(emp, "power")
        assert fit.model.exponent == pytest.approx(1.5, abs=0.1)
        assert fit.model.scale == pytest.approx(0.5, rel=0.2)


class TestSelection:
    def test_selects_generating_family(self):
        truth = GaussianVariogram(sill=2.0, range_=5.0)
        emp = synth_empirical(truth, np.arange(1, 12))
        best = select_variogram(emp)
        h = np.linspace(0.5, 10, 20)
        np.testing.assert_allclose(
            np.asarray(best.model(h)), np.asarray(truth(h)), rtol=0.1, atol=0.05
        )

    def test_selection_never_worse_than_each_family(self):
        emp = synth_empirical(ExponentialVariogram(sill=1.0, range_=3.0), np.arange(1, 9))
        best = select_variogram(emp)
        for kind in MODEL_KINDS:
            assert best.weighted_sse <= fit_variogram(emp, kind).weighted_sse + 1e-12

    def test_empty_kinds_rejected(self):
        emp = synth_empirical(LinearVariogram(1.0), [1.0, 2.0, 3.0])
        with pytest.raises(ValueError, match="non-empty"):
            select_variogram(emp, kinds=())

    def test_unknown_kind_rejected(self):
        emp = synth_empirical(LinearVariogram(1.0), [1.0, 2.0, 3.0])
        with pytest.raises(ValueError, match="unknown variogram kind"):
            fit_variogram(emp, "fractal")


class TestRobustness:
    def test_constant_gamma_fit_does_not_crash(self):
        emp = EmpiricalVariogram(
            lags=np.array([1.0, 2.0, 3.0]),
            gammas=np.zeros(3),
            counts=np.array([3, 3, 3]),
        )
        for kind in MODEL_KINDS:
            fit = fit_variogram(emp, kind)
            assert np.isfinite(fit.weighted_sse)

    def test_fitted_callable(self):
        emp = synth_empirical(LinearVariogram(2.0), [1.0, 2.0, 3.0])
        fit = fit_variogram(emp, "linear")
        assert fit(2.0) == pytest.approx(4.0)
