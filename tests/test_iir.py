"""Unit tests for the IIR benchmark (repro.signal.iir)."""

import numpy as np
import pytest
from scipy import signal as sp_signal

from repro.signal.iir import IIRBenchmark, design_butterworth_sos


@pytest.fixture(scope="module")
def iir():
    return IIRBenchmark(n_samples=512, seed=1)


class TestDesign:
    def test_four_sections_for_order_8(self):
        sos = design_butterworth_sos(8, 0.1)
        assert sos.shape == (4, 6)

    def test_sections_stable(self):
        sos = design_butterworth_sos(8, 0.1)
        for section in sos:
            poles = np.roots(section[3:])
            assert np.all(np.abs(poles) < 1.0)

    def test_unity_peak_gain_per_section(self):
        sos = design_butterworth_sos(8, 0.1)
        freqs = np.linspace(0.0, np.pi, 512)
        for section in sos:
            _, resp = sp_signal.freqz(section[:3], section[3:], worN=freqs)
            assert np.max(np.abs(resp)) == pytest.approx(1.0, abs=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            design_butterworth_sos(7, 0.1)
        with pytest.raises(ValueError):
            design_butterworth_sos(8, 0.6)


class TestBenchmark:
    def test_nv_is_five(self, iir):
        assert iir.NUM_VARIABLES == 5
        assert len(iir.VARIABLE_NAMES) == 5

    def test_reference_matches_scipy_cascade(self, iir):
        expected = iir.inputs
        for section in iir.sos:
            expected = sp_signal.lfilter(section[:3], section[3:], expected)
        np.testing.assert_allclose(iir.reference(), expected, atol=1e-12)

    def test_high_precision_converges_to_reference(self, iir):
        out = iir.simulate([24] * 5)
        assert np.max(np.abs(out - iir.reference())) < 1e-4

    def test_monotone_improvement(self, iir):
        coarse = iir.noise_power_db([8] * 5)
        fine = iir.noise_power_db([14] * 5)
        assert coarse > fine + 20

    def test_each_variable_matters(self, iir):
        # Degrading any single section from a fine baseline must hurt.
        base = iir.noise_power_db([14] * 5)
        for i in range(5):
            w = [14] * 5
            w[i] = 6
            assert iir.noise_power_db(w) > base + 3

    def test_wrong_length_rejected(self, iir):
        with pytest.raises(ValueError, match="expected 5"):
            iir.simulate([8, 8])

    def test_only_even_order_supported(self):
        with pytest.raises(ValueError):
            IIRBenchmark(order=6, n_samples=64)

    def test_deterministic(self, iir):
        np.testing.assert_array_equal(
            iir.simulate([9, 10, 11, 12, 13]), iir.simulate([9, 10, 11, 12, 13])
        )

    def test_integer_bits_from_range_analysis(self, iir):
        assert len(iir.integer_bits) == 5
        assert all(b >= 0 for b in iir.integer_bits)
