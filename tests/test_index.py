"""Unit tests for repro.core.index (neighborhood candidate indices)."""

import numpy as np
import pytest

from repro.core.distances import DistanceMetric, distances_to
from repro.core.index import (
    BruteForceIndex,
    KDTreeIndex,
    LatticeBucketIndex,
    make_index,
)
from repro.core.neighborhood import find_neighbors


def _fill(index, points):
    for row, point in enumerate(points):
        index.insert(point, row)


class TestBruteForceIndex:
    def test_all_points_are_candidates(self):
        pts = np.array([[0, 0], [3, 1], [9, 9]], dtype=float)
        index = BruteForceIndex(2)
        _fill(index, pts)
        np.testing.assert_array_equal(index.candidates(np.array([0.0, 0.0]), 1.0), [0, 1, 2])

    def test_empty(self):
        index = BruteForceIndex(2)
        assert index.candidates(np.array([0.0, 0.0]), 5.0).size == 0

    def test_out_of_order_insert_rejected(self):
        index = BruteForceIndex(2)
        with pytest.raises(ValueError, match="in order"):
            index.insert(np.array([0.0, 0.0]), 3)


class TestLatticeBucketIndex:
    @pytest.mark.parametrize("metric", ["l1", "l2", "linf"])
    def test_candidates_are_superset_of_true_neighbors(self, metric):
        rng = np.random.default_rng(42)
        pts = rng.integers(0, 12, size=(200, 4)).astype(float)
        index = LatticeBucketIndex(4, metric)
        _fill(index, pts)
        for _ in range(25):
            query = rng.integers(0, 12, size=4).astype(float)
            radius = float(rng.integers(1, 5))
            candidates = set(index.candidates(query, radius).tolist())
            true = set(np.flatnonzero(distances_to(pts, query, metric) <= radius).tolist())
            assert true <= candidates

    def test_candidates_ascending(self):
        rng = np.random.default_rng(3)
        pts = rng.integers(0, 8, size=(60, 3)).astype(float)
        index = LatticeBucketIndex(3)
        _fill(index, pts)
        cand = index.candidates(np.array([4.0, 4.0, 4.0]), 3.0)
        assert np.all(np.diff(cand) > 0)

    def test_prunes_far_points(self):
        # Two well-separated clusters: querying one must not scan the other.
        near = np.zeros((10, 3))
        near[:, 0] = np.arange(10)
        far = np.full((10, 3), 50.0)
        pts = np.vstack([near, far])
        index = LatticeBucketIndex(3)
        _fill(index, pts)
        cand = index.candidates(np.zeros(3), 3.0)
        assert set(cand.tolist()) <= set(range(10))

    def test_incremental_insertion(self):
        index = LatticeBucketIndex(2)
        index.insert(np.array([1.0, 1.0]), 0)
        assert index.candidates(np.array([1.0, 1.0]), 1.0).tolist() == [0]
        index.insert(np.array([2.0, 1.0]), 1)
        assert index.candidates(np.array([1.0, 1.0]), 1.0).tolist() == [0, 1]

    def test_bad_bucket_width_rejected(self):
        with pytest.raises(ValueError, match="bucket_width"):
            LatticeBucketIndex(2, bucket_width=0.0)

    def test_sparse_buckets_still_pruned(self):
        """The wide-range dict walk must keep the [lo, hi] bound filter."""
        index = LatticeBucketIndex(2)
        # Occupied sums: 0..5 plus a far cluster at 150 — few buckets, so a
        # radius-3 query takes the dict-walk shortcut.
        for row, s in enumerate([0, 1, 2, 3, 4, 5]):
            index.insert(np.array([float(s), 0.0]), row)
        index.insert(np.array([150.0, 0.0]), 6)
        cand = index.candidates(np.array([0.0, 0.0]), 3.0)
        assert 6 not in cand.tolist()
        assert set(cand.tolist()) == {0, 1, 2, 3}


class TestKDTreeIndex:
    """Property tests: KD-tree radius queries must match brute force."""

    def _assert_matches_brute(self, index, pts, query, radius):
        candidates = index.candidates(query, radius)
        assert np.all(np.diff(candidates) > 0), "candidates must ascend"
        true = set(
            np.flatnonzero(distances_to(pts, query, index.metric) <= radius).tolist()
        )
        assert true <= set(candidates.tolist())

    @pytest.mark.parametrize("metric", ["l1", "l2", "linf"])
    @pytest.mark.parametrize("n_points", [3, 40, 63, 64, 400])
    def test_random_float_configurations(self, metric, n_points):
        rng = np.random.default_rng(17)
        pts = rng.uniform(-5.0, 20.0, size=(n_points, 4))
        index = KDTreeIndex(4, metric)
        _fill(index, pts)
        for _ in range(25):
            query = rng.uniform(-8.0, 23.0, size=4)
            radius = float(rng.uniform(0.5, 8.0))
            self._assert_matches_brute(index, pts, query, radius)

    @pytest.mark.parametrize("metric", ["l1", "l2", "linf"])
    def test_lattice_configurations(self, metric):
        rng = np.random.default_rng(29)
        pts = rng.integers(0, 12, size=(300, 5)).astype(float)
        index = KDTreeIndex(5, metric)
        _fill(index, pts)
        for _ in range(25):
            query = rng.integers(0, 12, size=5).astype(float)
            radius = float(rng.integers(1, 6))
            self._assert_matches_brute(index, pts, query, radius)

    def test_incremental_insertions_interleaved_with_queries(self):
        """Queries stay exact through tail accumulation and rebuilds."""
        rng = np.random.default_rng(5)
        all_pts = rng.uniform(0.0, 10.0, size=(500, 3))
        index = KDTreeIndex(3, "l2", leaf_size=8)
        inserted = []
        for row, point in enumerate(all_pts):
            index.insert(point, row)
            inserted.append(point)
            if row % 37 == 0 or row in (63, 64, 127, 128, 255, 256):
                pts = np.asarray(inserted)
                query = rng.uniform(0.0, 10.0, size=3)
                self._assert_matches_brute(index, pts, query, 2.5)
        assert index.n_leaves > 1
        assert index.tail_size < len(index)

    def test_routed_find_neighbors_identical_to_plain(self):
        rng = np.random.default_rng(11)
        pts = rng.uniform(0.0, 12.0, size=(250, 5))
        index = KDTreeIndex(5, "l2")
        _fill(index, pts)
        for _ in range(20):
            query = rng.uniform(0.0, 12.0, size=5)
            radius = float(rng.uniform(1.0, 6.0))
            plain = find_neighbors(pts, query, radius, metric="l2")
            routed = find_neighbors(pts, query, radius, metric="l2", index=index)
            np.testing.assert_array_equal(plain, routed)

    def test_prunes_far_cluster(self):
        # 128 + 128 points: the last insert lands exactly on a
        # rebuild-on-doubling boundary, so the tree covers everything and
        # the far cluster must be pruned outright (no brute-force tail).
        near = np.random.default_rng(0).uniform(0.0, 4.0, size=(128, 3))
        far = near + 100.0
        index = KDTreeIndex(3, "l2", leaf_size=16)
        _fill(index, np.vstack([near, far]))
        assert index.tail_size == 0
        cand = index.candidates(np.full(3, 2.0), 5.0)
        assert 0 < cand.size <= 128
        assert set(cand.tolist()) <= set(range(128))

    def test_duplicate_points_stay_queryable(self):
        """A degenerate all-identical segment must become a leaf, not recurse."""
        pts = np.ones((64, 2))  # 64 = rebuild boundary: fully in-tree
        index = KDTreeIndex(2, "l2", leaf_size=4)
        _fill(index, pts)
        assert index.tail_size == 0
        assert index.candidates(np.ones(2), 0.5).size == 64
        assert index.candidates(np.zeros(2), 0.5).size == 0

    def test_empty_and_validation(self):
        index = KDTreeIndex(2)
        assert index.candidates(np.zeros(2), 3.0).size == 0
        with pytest.raises(ValueError, match="leaf_size"):
            KDTreeIndex(2, leaf_size=0)
        with pytest.raises(ValueError, match="in order"):
            index.insert(np.zeros(2), 5)


class TestMakeIndex:
    def test_auto_selection(self):
        assert isinstance(make_index("l1", 3), LatticeBucketIndex)
        assert isinstance(make_index("linf", 3), LatticeBucketIndex)
        assert isinstance(make_index("l2", 3), KDTreeIndex)

    def test_explicit_kinds(self):
        assert isinstance(make_index("l2", 3, "bucket"), LatticeBucketIndex)
        assert isinstance(make_index("l1", 3, "brute"), BruteForceIndex)
        assert isinstance(make_index("l1", 3, "kdtree"), KDTreeIndex)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="index kind"):
            make_index("l1", 3, "balltree")


class TestFindNeighborsWithIndex:
    @pytest.mark.parametrize("metric", ["l1", "l2", "linf"])
    @pytest.mark.parametrize("kind", ["brute", "bucket", "kdtree"])
    def test_identical_to_unindexed(self, metric, kind):
        rng = np.random.default_rng(7)
        pts = rng.integers(0, 10, size=(150, 5)).astype(float)
        index = make_index(metric, 5, kind)
        _fill(index, pts)
        for _ in range(20):
            query = rng.integers(0, 10, size=5).astype(float)
            radius = float(rng.integers(1, 6))
            plain = find_neighbors(pts, query, radius, metric=metric)
            routed = find_neighbors(pts, query, radius, metric=metric, index=index)
            np.testing.assert_array_equal(plain, routed)

    def test_index_points_size_mismatch_rejected(self):
        pts = np.zeros((4, 2))
        index = make_index("l1", 2)
        index.insert(np.zeros(2), 0)  # only 1 of 4 rows covered
        with pytest.raises(ValueError, match="lockstep"):
            find_neighbors(pts, np.zeros(2), 1.0, index=index)

    def test_max_neighbors_with_index(self):
        pts = np.array([[0, 0], [1, 0], [0, 1], [2, 0]], dtype=float)
        index = make_index(DistanceMetric.L1, 2)
        _fill(index, pts)
        idx = find_neighbors(pts, np.array([0.0, 0.0]), 5.0, index=index, max_neighbors=2)
        assert idx.tolist() == [0, 1]
