"""Integration tests: the full pipeline on small-scale benchmarks.

These exercise the complete paper loop — benchmark kernel, optimizer,
kriging-in-the-loop acceleration and trajectory replay — end to end.
"""

import numpy as np
import pytest

from repro.core.estimator import KrigingEstimator
from repro.experiments.decisions import measure_decision_divergence
from repro.experiments.replay import replay_trace
from repro.optimization.evaluator import KrigingMetricEvaluator


class TestKrigingInTheLoop:
    def test_fir_kriging_run_reduces_simulations(self, fir_setup):
        reference = fir_setup.reference_result
        estimator = KrigingEstimator(
            fir_setup.problem.simulate,
            fir_setup.problem.num_variables,
            distance=3,
            nn_min=1,
        )
        result = fir_setup.run_reference_optimization(KrigingMetricEvaluator(estimator))
        assert estimator.stats.n_simulated < reference.trace.n_simulated
        assert result.satisfied or result.solution_value == pytest.approx(
            reference.solution_value, abs=6.0
        )

    def test_iir_variance_gated_run_matches_reference_cost(self, iir_setup):
        # Variance-gated interpolation preserves decision quality (the
        # paper's "ends with a similar result"), at a lower interpolation
        # rate — the trade-off quantified in benchmark E8.
        reference = iir_setup.reference_result
        estimator = KrigingEstimator(
            iir_setup.problem.simulate,
            iir_setup.problem.num_variables,
            distance=3,
            nn_min=1,
            variogram="auto",
            min_fit_points=4,
            refit_interval=1,
            max_variance=0.5,
        )
        result = iir_setup.run_reference_optimization(KrigingMetricEvaluator(estimator))
        assert result.cost == pytest.approx(reference.cost, rel=0.2)

    def test_iir_default_policy_run_stays_feasible(self, iir_setup):
        # The ungated policy may overshoot in cost, but verified commits keep
        # the returned configuration feasible.
        problem = iir_setup.problem
        estimator = KrigingEstimator(
            problem.simulate, problem.num_variables, distance=3, nn_min=1,
            variogram="auto", min_fit_points=4, refit_interval=1,
        )
        result = iir_setup.run_reference_optimization(KrigingMetricEvaluator(estimator))
        true_value = problem.simulate(np.array(result.solution))
        assert problem.satisfied(true_value)

    def test_fft_true_metric_at_kriging_solution_feasible(self, fft_setup):
        problem = fft_setup.problem
        estimator = KrigingEstimator(
            problem.simulate, problem.num_variables, distance=2, nn_min=1
        )
        result = fft_setup.run_reference_optimization(KrigingMetricEvaluator(estimator))
        true_value = problem.simulate(np.array(result.solution))
        # Verified commits guarantee the returned configuration is feasible.
        assert problem.satisfied(true_value)


class TestDecisionDivergence:
    def test_fir_divergence_measured(self, fir_setup):
        div = measure_decision_divergence(fir_setup, distance=3)
        assert 0.0 <= div.different_decisions_percent <= 100.0
        assert div.n_simulations_kriging <= div.n_simulations_reference
        assert abs(div.cost_gap_percent) < 25.0


class TestReplayAgainstInLoop:
    def test_replay_p_close_to_in_loop_p(self, iir_setup):
        """Replay statistics should approximate the in-the-loop behaviour."""
        trace = iir_setup.record_trajectory()
        stats = replay_trace(trace, distance=3, nn_min=1)

        estimator = KrigingEstimator(
            iir_setup.problem.simulate,
            iir_setup.problem.num_variables,
            distance=3,
            nn_min=1,
        )
        iir_setup.run_reference_optimization(KrigingMetricEvaluator(estimator))
        in_loop_p = 100.0 * estimator.stats.interpolated_fraction
        assert stats.p_percent == pytest.approx(in_loop_p, abs=30.0)


class TestEndToEndSqueezeNet:
    def test_small_sensitivity_pipeline(self):
        from repro.experiments.registry import build_benchmark

        setup = build_benchmark("squeezenet", "small")
        trace = setup.record_trajectory()
        assert len(trace) > 20
        stats = replay_trace(
            trace, metric_kind=setup.metric_kind, distance=3, nn_min=1
        )
        assert stats.n_interpolated > 0
        assert stats.mean_error < 0.5  # relative pcl error below 50 %

    def test_budget_satisfies_pcl(self):
        from repro.experiments.registry import build_benchmark

        setup = build_benchmark("squeezenet", "small")
        result = setup.reference_result
        assert result.satisfied
        assert result.solution_value >= setup.problem.threshold
