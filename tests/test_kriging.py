"""Unit tests for repro.core.kriging (paper Eqs. 7-10)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kriging import ordinary_kriging, simple_kriging
from repro.core.models import (
    GaussianVariogram,
    LinearVariogram,
    NuggetVariogram,
    SphericalVariogram,
)

VG = LinearVariogram(1.0)


def grid_points(rng, n, dim, low=0, high=12):
    return rng.integers(low, high, size=(n, dim)).astype(float)


class TestExactness:
    """Kriging is an exact interpolator (Section III-A)."""

    def test_exact_at_support_point(self, rng):
        pts = grid_points(rng, 8, 3)
        vals = rng.normal(size=8)
        for i in range(8):
            res = ordinary_kriging(pts, vals, pts[i], VG)
            assert res.estimate == pytest.approx(vals[i], abs=1e-8)

    def test_variance_zero_at_support_point(self, rng):
        pts = grid_points(rng, 6, 2)
        vals = rng.normal(size=6)
        res = ordinary_kriging(pts, vals, pts[2], VG)
        assert res.variance == pytest.approx(0.0, abs=1e-8)


class TestUnbiasedness:
    """The universality constraint: weights sum to one (Eq. 6)."""

    @settings(deadline=None, max_examples=25)
    @given(st.integers(min_value=1, max_value=12), st.integers(min_value=1, max_value=6))
    def test_weights_sum_to_one(self, n, dim):
        rng = np.random.default_rng(n * 100 + dim)
        pts = grid_points(rng, n, dim)
        vals = rng.normal(size=n)
        query = rng.integers(0, 12, size=dim).astype(float)
        res = ordinary_kriging(pts, vals, query, VG)
        assert float(np.sum(res.weights)) == pytest.approx(1.0, abs=1e-6)

    def test_constant_field_reproduced_exactly(self, rng):
        pts = grid_points(rng, 10, 4)
        vals = np.full(10, 3.25)
        query = rng.integers(0, 12, size=4).astype(float)
        res = ordinary_kriging(pts, vals, query, VG)
        assert res.estimate == pytest.approx(3.25, abs=1e-8)

    def test_shift_equivariance(self, rng):
        pts = grid_points(rng, 9, 3)
        vals = rng.normal(size=9)
        query = np.array([5.0, 5.0, 5.0])
        base = ordinary_kriging(pts, vals, query, VG).estimate
        shifted = ordinary_kriging(pts, vals + 100.0, query, VG).estimate
        assert shifted == pytest.approx(base + 100.0, abs=1e-6)

    def test_scale_equivariance(self, rng):
        pts = grid_points(rng, 9, 3)
        vals = rng.normal(size=9)
        query = np.array([5.0, 5.0, 5.0])
        base = ordinary_kriging(pts, vals, query, VG).estimate
        scaled = ordinary_kriging(pts, 3.0 * vals, query, VG).estimate
        assert scaled == pytest.approx(3.0 * base, abs=1e-6)


class TestWeightsInvariance:
    def test_weights_invariant_to_variogram_scale(self, rng):
        # Multiplying gamma by a constant leaves ordinary-kriging weights
        # unchanged (only the variance rescales).
        pts = grid_points(rng, 7, 2)
        vals = rng.normal(size=7)
        query = np.array([4.0, 4.0])
        w1 = ordinary_kriging(pts, vals, query, LinearVariogram(1.0)).weights
        w2 = ordinary_kriging(pts, vals, query, LinearVariogram(7.5)).weights
        np.testing.assert_allclose(w1, w2, atol=1e-8)


class TestAnalyticCases:
    def test_midpoint_two_points_linear_variogram(self):
        # Query equidistant between two support points: symmetric weights.
        pts = np.array([[0.0], [4.0]])
        vals = np.array([1.0, 3.0])
        res = ordinary_kriging(pts, vals, np.array([2.0]), VG)
        np.testing.assert_allclose(res.weights, [0.5, 0.5], atol=1e-9)
        assert res.estimate == pytest.approx(2.0)

    def test_single_support_point_returns_its_value(self):
        res = ordinary_kriging(np.array([[3.0, 3.0]]), np.array([9.0]),
                               np.array([0.0, 0.0]), VG)
        assert res.estimate == pytest.approx(9.0)
        assert res.weights[0] == pytest.approx(1.0)

    def test_one_sided_linear_variogram_is_nearest_neighbor(self):
        # Intrinsic random-walk model: best predictor beyond the data is the
        # closest value.
        pts = np.array([[1.0], [2.0]])
        vals = np.array([10.0, 20.0])
        res = ordinary_kriging(pts, vals, np.array([0.0]), VG)
        np.testing.assert_allclose(res.weights, [1.0, 0.0], atol=1e-9)

    def test_one_sided_gaussian_variogram_extrapolates_trend(self):
        # Smooth (quadratic-at-origin) variogram extrapolates the local slope.
        pts = np.array([[1.0], [2.0]])
        vals = np.array([10.0, 20.0])
        vg = GaussianVariogram(sill=100.0, range_=50.0)
        res = ordinary_kriging(pts, vals, np.array([0.0]), vg)
        assert res.estimate == pytest.approx(0.0, abs=0.5)

    def test_interpolation_on_linear_field_inside_hull(self, rng):
        slope = np.array([2.0, -1.0, 0.5])
        pts = grid_points(rng, 40, 3)
        vals = pts @ slope + 4.0
        query = np.array([6.0, 6.0, 6.0])
        res = ordinary_kriging(pts, vals, query, VG)
        assert res.estimate == pytest.approx(float(query @ slope + 4.0), abs=1e-6)

    def test_pure_nugget_gives_equal_weights(self, rng):
        pts = np.array([[0.0, 0.0], [4.0, 0.0], [0.0, 4.0]])
        vals = np.array([1.0, 2.0, 6.0])
        res = ordinary_kriging(pts, vals, np.array([1.0, 1.0]), NuggetVariogram(1.0))
        np.testing.assert_allclose(res.weights, [1 / 3] * 3, atol=1e-9)
        assert res.estimate == pytest.approx(3.0)


class TestVariance:
    def test_variance_nonnegative(self, rng):
        pts = grid_points(rng, 10, 3)
        vals = rng.normal(size=10)
        query = rng.integers(0, 12, size=3).astype(float)
        res = ordinary_kriging(pts, vals, query, VG)
        assert res.variance >= 0.0

    def test_variance_grows_with_distance(self):
        pts = np.array([[0.0], [1.0]])
        vals = np.array([0.0, 1.0])
        near = ordinary_kriging(pts, vals, np.array([1.5]), VG).variance
        far = ordinary_kriging(pts, vals, np.array([6.0]), VG).variance
        assert far > near


class TestDegenerateInputs:
    def test_duplicate_support_points_handled(self):
        pts = np.array([[1.0, 1.0], [1.0, 1.0], [3.0, 3.0]])
        vals = np.array([2.0, 2.0, 6.0])
        res = ordinary_kriging(pts, vals, np.array([2.0, 2.0]), VG)
        assert np.isfinite(res.estimate)
        assert 1.9 <= res.estimate <= 6.1

    def test_validation_errors(self):
        with pytest.raises(ValueError, match="non-empty"):
            ordinary_kriging(np.empty((0, 2)), np.empty(0), np.zeros(2), VG)
        with pytest.raises(ValueError, match="incompatible"):
            ordinary_kriging(np.zeros((3, 2)), np.zeros(4), np.zeros(2), VG)
        with pytest.raises(ValueError, match="incompatible"):
            ordinary_kriging(np.zeros((3, 2)), np.zeros(3), np.zeros(5), VG)
        with pytest.raises(ValueError, match="non-finite"):
            ordinary_kriging(
                np.zeros((2, 2)), np.array([np.nan, 1.0]), np.zeros(2), VG
            )


class TestSimpleKriging:
    def test_far_query_regresses_to_mean(self):
        vg = SphericalVariogram(sill=1.0, range_=2.0)
        pts = np.array([[0.0, 0.0]])
        vals = np.array([10.0])
        res = simple_kriging(pts, vals, np.array([50.0, 50.0]), vg, mean=4.0, sill=1.0)
        assert res.estimate == pytest.approx(4.0, abs=1e-6)

    def test_exact_at_support(self):
        vg = SphericalVariogram(sill=1.0, range_=3.0)
        pts = np.array([[0.0], [2.0]])
        vals = np.array([1.0, 5.0])
        res = simple_kriging(pts, vals, np.array([0.0]), vg, mean=0.0, sill=1.0)
        assert res.estimate == pytest.approx(1.0, abs=1e-6)

    def test_invalid_sill_rejected(self):
        with pytest.raises(ValueError, match="sill"):
            simple_kriging(
                np.zeros((1, 1)), np.zeros(1), np.zeros(1), VG, mean=0.0, sill=0.0
            )

    def test_lagrange_zero(self):
        vg = SphericalVariogram(sill=1.0, range_=3.0)
        res = simple_kriging(
            np.array([[0.0]]), np.array([2.0]), np.array([1.0]), vg, mean=0.0, sill=1.0
        )
        assert res.lagrange == 0.0


class TestEquation10Form:
    def test_matches_direct_matrix_formula(self, rng):
        """Cross-check against the explicit gamma_i . Gamma^-1 . lambda form."""
        pts = grid_points(rng, 6, 2, high=8)
        # Ensure distinct points so Gamma is invertible.
        pts = np.unique(pts, axis=0)
        n = pts.shape[0]
        vals = rng.normal(size=n)
        query = np.array([3.5, 2.5])

        gamma = np.zeros((n + 1, n + 1))
        for j in range(n):
            for k in range(n):
                gamma[j, k] = float(VG(np.abs(pts[j] - pts[k]).sum()))
        gamma[:n, n] = 1.0
        gamma[n, :n] = 1.0
        lam = np.concatenate([vals, [0.0]])
        gamma_i = np.array(
            [float(VG(np.abs(query - pts[k]).sum())) for k in range(n)] + [1.0]
        )
        direct = float(gamma_i @ np.linalg.solve(gamma, lam))

        res = ordinary_kriging(pts, vals, query, VG)
        assert res.estimate == pytest.approx(direct, abs=1e-8)


class TestOrdinaryKrigingBatch:
    """ordinary_kriging_batch: one factorization, outcomes identical per query."""

    def _random_case(self, rng, n=8, m=12, dim=3):
        pts = np.unique(grid_points(rng, n, dim), axis=0)
        vals = rng.normal(size=pts.shape[0])
        queries = grid_points(rng, m, dim)
        return pts, vals, queries

    def test_matches_per_query_path(self, rng):
        from repro.core.kriging import ordinary_kriging_batch

        pts, vals, queries = self._random_case(rng)
        batch = ordinary_kriging_batch(pts, vals, queries, VG)
        assert len(batch) == queries.shape[0]
        for query, result in zip(queries, batch):
            single = ordinary_kriging(pts, vals, query, VG)
            assert result.estimate == pytest.approx(single.estimate, abs=1e-9)
            assert result.variance == pytest.approx(single.variance, abs=1e-9)

    def test_exact_hits_in_batch(self, rng):
        from repro.core.kriging import ordinary_kriging_batch

        pts, vals, _ = self._random_case(rng)
        # Mix support points (exact hits) with off-support queries.
        queries = np.vstack([pts[2], pts[0] + 0.5, pts[4]])
        results = ordinary_kriging_batch(pts, vals, queries, VG)
        assert results[0].estimate == pytest.approx(vals[2])
        assert results[0].variance == 0.0
        assert results[2].estimate == pytest.approx(vals[4])

    def test_empty_queries(self, rng):
        from repro.core.kriging import ordinary_kriging_batch

        pts, vals, _ = self._random_case(rng)
        assert ordinary_kriging_batch(pts, vals, np.empty((0, 3)), VG) == []

    def test_query_shape_validation(self, rng):
        from repro.core.kriging import ordinary_kriging_batch

        pts, vals, _ = self._random_case(rng)
        with pytest.raises(ValueError, match="queries"):
            ordinary_kriging_batch(pts, vals, np.zeros((2, 5)), VG)

    def test_weights_sum_to_one(self, rng):
        from repro.core.kriging import ordinary_kriging_batch

        pts, vals, queries = self._random_case(rng, n=10, m=6)
        for result in ordinary_kriging_batch(pts, vals, queries, VG):
            assert result.weights.sum() == pytest.approx(1.0, abs=1e-6)


class TestIllConditionedFallback:
    def test_shift_equivariance_on_near_singular_support(self):
        """Nearly singular bordered systems must not return garbage.

        np.linalg.solve can succeed with finite but astronomically wrong
        weights on this support (condition number ~1e18 with the linear
        variogram); the residual check in _solve must reject it and fall
        back to the minimum-norm least-squares solution, which honours the
        unit-sum constraint.
        """
        pts = np.asarray([(0, 1), (0, 0), (1, 0), (1, 1), (2, 0)], dtype=float)
        vals = np.random.default_rng(7).normal(size=pts.shape[0])
        query = np.array([4.5, 4.5])
        base = ordinary_kriging(pts, vals, query, VG)
        moved = ordinary_kriging(pts, vals + 1.0, query, VG)
        assert abs(base.estimate) < 1e6
        assert moved.estimate - base.estimate == pytest.approx(1.0, abs=1e-6)


class TestStackedGroupedSolve:
    """solve_groups_stacked: same-size systems batched into one gesv call,
    semantics identical to the per-group path."""

    def _groups(self, rng, n_groups=10, sizes=(6, 9, 12), m=4, dim=3):
        groups = []
        for g in range(n_groups):
            pts = np.unique(grid_points(rng, sizes[g % len(sizes)] + 4, dim), axis=0)
            pts = pts[: sizes[g % len(sizes)]]
            vals = rng.normal(size=pts.shape[0])
            groups.append((pts, vals, grid_points(rng, m, dim)))
        return groups

    @staticmethod
    def _flat(results):
        return [
            (r.estimate, r.variance) for group in results for r in group
        ]

    def test_size_bins_first_encounter_order(self):
        from repro.core.kriging import _size_bins

        assert _size_bins([5, 7, 5, 3, 7, 5]) == [[0, 2, 5], [1, 4], [3]]
        assert _size_bins([]) == []

    def test_stacked_matches_per_group_within_envelope(self, rng):
        from repro.core.kriging import ordinary_kriging_batch, solve_groups_stacked

        groups = self._groups(rng)
        stacked = solve_groups_stacked(groups, VG)
        for (pts, vals, queries), group_results in zip(groups, stacked):
            reference = ordinary_kriging_batch(pts, vals, queries, VG)
            for got, ref in zip(group_results, reference):
                assert got.estimate == pytest.approx(ref.estimate, abs=1e-9)
                assert got.variance == pytest.approx(ref.variance, abs=1e-9)

    @pytest.mark.parametrize("n_jobs,backend", [(1, "thread"), (3, "thread")])
    def test_stacking_bitwise_across_n_jobs(self, rng, n_jobs, backend):
        """Bins are computed identically on every backend: n_jobs cannot
        change a bit of the stacked output."""
        from repro.core.kriging import ordinary_kriging_grouped

        groups = self._groups(rng, n_groups=12)
        serial = ordinary_kriging_grouped(groups, VG, n_jobs=1, stacking=True)
        other = ordinary_kriging_grouped(
            groups, VG, n_jobs=n_jobs, backend=backend, stacking=True
        )
        assert self._flat(serial) == self._flat(other)

    def test_stacked_handles_exact_hits_and_duplicates(self, rng):
        """Duplicate support rows collapse before binning (groups bin by
        the *validated* size) and exact hits short-circuit per query."""
        from repro.core.kriging import ordinary_kriging_batch, solve_groups_stacked

        pts = np.unique(grid_points(rng, 12, 3), axis=0)[:8]
        vals = rng.normal(size=8)
        dup_pts = np.vstack([pts, pts[:2]])  # collapses back to 8
        dup_vals = np.concatenate([vals, vals[:2]])
        queries = np.vstack([pts[3], pts[0] + 0.5])
        groups = [
            (dup_pts, dup_vals, queries),
            (pts, vals, queries),  # same validated size: stacks together
        ]
        stacked = solve_groups_stacked(groups, VG)
        for group_results in stacked:
            assert group_results[0].estimate == pytest.approx(vals[3])
            assert group_results[0].variance == 0.0
            ref = ordinary_kriging_batch(pts, vals, queries, VG)
            assert group_results[1].estimate == pytest.approx(
                ref[1].estimate, abs=1e-9
            )

    def test_singular_slice_falls_back_per_group(self, rng):
        """One near-singular member must not poison its stack: that slice
        re-solves through the residual-checked fallback, the rest keep the
        batched solution."""
        from repro.core.kriging import ordinary_kriging_batch, solve_groups_stacked

        degenerate = np.asarray(
            [(0, 1), (0, 0), (1, 0), (1, 1), (2, 0)], dtype=float
        )
        healthy = np.unique(grid_points(rng, 9, 2), axis=0)[:5]
        vals_d = rng.normal(size=5)
        vals_h = rng.normal(size=5)
        query = np.array([[4.5, 4.5]])
        groups = [(degenerate, vals_d, query), (healthy, vals_h, query)]
        stacked = solve_groups_stacked(groups, VG)
        ref_d = ordinary_kriging_batch(degenerate, vals_d, query, VG)
        ref_h = ordinary_kriging_batch(healthy, vals_h, query, VG)
        assert stacked[0][0].estimate == pytest.approx(ref_d[0].estimate, abs=1e-6)
        assert stacked[1][0].estimate == pytest.approx(ref_h[0].estimate, abs=1e-9)

    def test_phase_timings_accumulate(self, rng):
        from repro.core.kriging import SolvePhases, solve_groups_stacked

        phases = SolvePhases()
        solve_groups_stacked(self._groups(rng), VG, phases=phases)
        assembly, factorize, backsolve = phases.totals()
        assert assembly > 0.0 and factorize > 0.0 and backsolve > 0.0
