"""Unit tests for repro.core.lowrank (Cholesky maintenance kernels).

Every edited factor is checked against a from-scratch ``np.linalg.cholesky``
of the correspondingly edited matrix — the ground truth the rank-1 algebra
must reproduce.
"""

import numpy as np
import pytest

from repro.core import lowrank
from repro.core.lowrank import (
    chol_append,
    chol_delete,
    choldowndate,
    cholupdate,
    solve_lower,
    solve_lower_transpose,
)


def _spd(n, seed=0, jitter=None):
    rng = np.random.default_rng(seed)
    m = rng.normal(size=(n, n))
    a = m @ m.T + (jitter if jitter is not None else n) * np.eye(n)
    return a, rng


class TestRankOneUpdates:
    @pytest.mark.parametrize("n", [1, 2, 5, 40])
    def test_update_matches_refactorization(self, n):
        a, rng = _spd(n, seed=n)
        chol = np.linalg.cholesky(a)
        x = rng.normal(size=n)
        updated = cholupdate(chol, x)
        np.testing.assert_allclose(
            updated, np.linalg.cholesky(a + np.outer(x, x)), rtol=1e-9, atol=1e-9
        )
        # Input factor untouched.
        np.testing.assert_array_equal(chol, np.linalg.cholesky(a))

    @pytest.mark.parametrize("n", [1, 2, 5, 40])
    def test_downdate_inverts_update(self, n):
        a, rng = _spd(n, seed=n + 100)
        chol = np.linalg.cholesky(a)
        x = rng.normal(size=n)
        roundtrip = choldowndate(cholupdate(chol, x), x)
        np.testing.assert_allclose(roundtrip, chol, rtol=1e-7, atol=1e-8)

    def test_downdate_rejects_indefinite(self):
        a, rng = _spd(6, seed=3)
        chol = np.linalg.cholesky(a)
        huge = 100.0 * rng.normal(size=6)
        with pytest.raises(np.linalg.LinAlgError):
            choldowndate(chol, huge)

    def test_shape_mismatch_rejected(self):
        chol = np.linalg.cholesky(_spd(4)[0])
        with pytest.raises(ValueError, match="incompatible"):
            cholupdate(chol, np.ones(3))
        with pytest.raises(ValueError, match="incompatible"):
            choldowndate(chol, np.ones(5))


class TestAppendDelete:
    def test_append_matches_bordered_refactorization(self):
        a, rng = _spd(12, seed=7)
        chol = np.linalg.cholesky(a)
        cross = rng.normal(size=12)
        diagonal = float(cross @ np.linalg.solve(a, cross)) + 2.0  # keeps PD
        grown = chol_append(chol, cross, diagonal)
        bordered = np.block(
            [[a, cross[:, None]], [cross[None, :], np.array([[diagonal]])]]
        )
        np.testing.assert_allclose(
            grown, np.linalg.cholesky(bordered), rtol=1e-9, atol=1e-9
        )

    def test_append_from_empty(self):
        grown = chol_append(np.zeros((0, 0)), np.zeros(0), 4.0)
        np.testing.assert_allclose(grown, [[2.0]])

    def test_append_rejects_indefinite_border(self):
        a, rng = _spd(8, seed=9)
        chol = np.linalg.cholesky(a)
        cross = rng.normal(size=8)
        bad_diagonal = float(cross @ np.linalg.solve(a, cross)) - 1.0
        with pytest.raises(np.linalg.LinAlgError):
            chol_append(chol, cross, bad_diagonal)

    @pytest.mark.parametrize("index", [0, 3, 9])
    def test_delete_matches_submatrix_refactorization(self, index):
        a, _ = _spd(10, seed=11)
        chol = np.linalg.cholesky(a)
        shrunk = chol_delete(chol, index)
        keep = [i for i in range(10) if i != index]
        np.testing.assert_allclose(
            shrunk, np.linalg.cholesky(a[np.ix_(keep, keep)]), rtol=1e-8, atol=1e-8
        )

    def test_delete_out_of_range(self):
        chol = np.linalg.cholesky(_spd(4)[0])
        with pytest.raises(IndexError):
            chol_delete(chol, 4)

    def test_append_delete_roundtrip(self):
        a, rng = _spd(15, seed=13)
        chol = np.linalg.cholesky(a)
        cross = rng.normal(size=15)
        diagonal = float(cross @ np.linalg.solve(a, cross)) + 3.0
        roundtrip = chol_delete(chol_append(chol, cross, diagonal), 15)
        np.testing.assert_allclose(roundtrip, chol, rtol=1e-8, atol=1e-9)


class TestTriangularSolves:
    @pytest.mark.parametrize("rhs_shape", [(30,), (30, 1), (30, 9)])
    def test_solve_lower_matches_dense(self, rhs_shape):
        a, rng = _spd(30, seed=17)
        chol = np.linalg.cholesky(a)
        rhs = rng.normal(size=rhs_shape)
        np.testing.assert_allclose(
            solve_lower(chol, rhs), np.linalg.solve(chol, rhs), rtol=1e-9, atol=1e-10
        )
        np.testing.assert_allclose(
            solve_lower_transpose(chol, rhs),
            np.linalg.solve(chol.T, rhs),
            rtol=1e-9,
            atol=1e-10,
        )

    @pytest.mark.parametrize("n", [1, 95, 96, 97, 300])
    def test_numpy_fallback_matches_scipy_path(self, n, monkeypatch):
        """The divide-and-conquer fallback must agree with the dense solve
        across the base-case boundary (CI installs numpy only)."""
        a, rng = _spd(n, seed=n)
        chol = np.linalg.cholesky(a)
        rhs = rng.normal(size=(n, 4))
        monkeypatch.setattr(lowrank, "_scipy_solve_triangular", None)
        np.testing.assert_allclose(
            solve_lower(chol, rhs), np.linalg.solve(chol, rhs), rtol=1e-8, atol=1e-9
        )
        np.testing.assert_allclose(
            solve_lower_transpose(chol, rhs),
            np.linalg.solve(chol.T, rhs),
            rtol=1e-8,
            atol=1e-9,
        )
