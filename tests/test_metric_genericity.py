"""Metric-genericity tests (the paper's Section V claim).

"Its major advantage is that it is not dependent on a particular metric" —
the same policy, optimizer and replay machinery must work unchanged on a
higher-is-better QoS metric.  We exercise the HEVC module's PSNR metric and
the chroma filter tables end to end at small scale.
"""

import numpy as np
import pytest

from repro.experiments.replay import MetricKind, replay_trace
from repro.optimization import DSEProblem, MetricSense, MinPlusOneOptimizer
from repro.video import BlockWorkload, MotionCompensationBenchmark, chroma_filter


@pytest.fixture(scope="module")
def mc():
    workload = BlockWorkload.generate(n_blocks=8, seed=3)
    return MotionCompensationBenchmark(workload=workload)


class TestChromaFilters:
    def test_unit_dc_gain_all_phases(self):
        for phase in range(8):
            assert np.sum(chroma_filter(phase)) == pytest.approx(1.0)

    def test_phase0_identity(self):
        taps = chroma_filter(0)
        assert taps[1] == 1.0
        assert np.count_nonzero(taps) == 1

    def test_half_pel_symmetric(self):
        taps = chroma_filter(4)
        np.testing.assert_allclose(taps, taps[::-1])

    def test_mirror_phases(self):
        for phase in range(1, 8):
            np.testing.assert_allclose(
                chroma_filter(phase), chroma_filter(8 - phase)[::-1]
            )

    def test_invalid_phase(self):
        with pytest.raises(ValueError):
            chroma_filter(8)


class TestPSNRMetric:
    def test_psnr_is_negated_noise_power(self, mc):
        w = [12] * 23
        assert mc.psnr_db(w) == pytest.approx(-mc.noise_power_db(w))

    def test_psnr_improves_with_bits(self, mc):
        assert mc.psnr_db([14] * 23) > mc.psnr_db([8] * 23) + 20

    def test_minplusone_on_psnr_metric(self, mc):
        """The optimizer runs unchanged on a HIGHER_IS_BETTER QoS metric."""
        problem = DSEProblem(
            name="hevc-psnr",
            num_variables=23,
            min_value=4,
            max_value=20,
            simulate=mc.psnr_db,
            sense=MetricSense.HIGHER_IS_BETTER,
            threshold=45.0,
        )
        result = MinPlusOneOptimizer(problem).run()
        assert result.satisfied
        assert mc.psnr_db(np.asarray(result.solution)) >= 45.0

    def test_replay_on_psnr_trajectory(self, mc):
        """The kriging replay applies unchanged to the QoS trajectory."""
        problem = DSEProblem(
            name="hevc-psnr",
            num_variables=23,
            min_value=4,
            max_value=20,
            simulate=mc.psnr_db,
            sense=MetricSense.HIGHER_IS_BETTER,
            threshold=45.0,
        )
        result = MinPlusOneOptimizer(problem).run()
        stats = replay_trace(
            result.trace,
            benchmark="hevc-psnr",
            metric_kind=MetricKind.RATE,  # relative-difference errors (Eq. 12)
            distance=3,
        )
        assert stats.n_interpolated > 0
        assert stats.mean_error < 0.05  # within 5 % of the true PSNR
