"""Unit tests for the min+1 bit optimizer (paper Algorithms 1-2)."""

import numpy as np
import pytest

from repro.optimization.evaluator import SimulationEvaluator
from repro.optimization.minplusone import (
    MinPlusOneOptimizer,
    determine_minimum_wordlengths,
    optimize_wordlengths,
)
from repro.optimization.problem import DSEProblem, MetricSense


def additive_noise_db(gains):
    """Analytic additive quantization-noise model: each variable contributes
    ``g_i * 2^(-2 w_i)`` of noise power — the textbook word-length surface."""
    gains = np.asarray(gains, dtype=float)

    def metric(w):
        powers = gains * np.exp2(-2.0 * np.asarray(w, dtype=float))
        return float(10.0 * np.log10(np.sum(powers)))

    return metric


def make_problem(nv=3, threshold=-55.0, gains=None):
    gains = np.ones(nv) if gains is None else gains
    return DSEProblem(
        name="analytic",
        num_variables=nv,
        min_value=1,
        max_value=16,
        simulate=additive_noise_db(gains),
        sense=MetricSense.LOWER_IS_BETTER,
        threshold=threshold,
    )


class TestAlgorithm1:
    def test_wmin_is_individual_minimum(self):
        problem = make_problem(nv=2, threshold=-55.0)
        evaluator = SimulationEvaluator(problem.simulate)
        wmin = determine_minimum_wordlengths(problem, evaluator)
        # Check the defining property: wmin_i satisfies with others at Nmax,
        # wmin_i - 1 does not.
        for i in range(2):
            w = problem.full_configuration(16)
            w[i] = wmin[i]
            assert problem.satisfied(problem.simulate(w))
            if wmin[i] > problem.min_value:
                w[i] = wmin[i] - 1
                assert not problem.satisfied(problem.simulate(w))

    def test_equal_gains_give_equal_minima(self):
        problem = make_problem(nv=4, threshold=-50.0)
        wmin = determine_minimum_wordlengths(
            problem, SimulationEvaluator(problem.simulate)
        )
        assert len(set(wmin.tolist())) == 1

    def test_larger_gain_needs_more_bits(self):
        problem = make_problem(nv=2, gains=np.array([1.0, 256.0]), threshold=-50.0)
        wmin = determine_minimum_wordlengths(
            problem, SimulationEvaluator(problem.simulate)
        )
        assert wmin[1] == wmin[0] + 4  # 256 = 2^8 => 4 extra bits at 2 bits/octave

    def test_saturates_at_lower_bound_when_trivial(self):
        problem = make_problem(nv=2, threshold=10.0)  # constraint always met
        wmin = determine_minimum_wordlengths(
            problem, SimulationEvaluator(problem.simulate)
        )
        np.testing.assert_array_equal(wmin, [1, 1])

    def test_phase_recorded_in_trace(self):
        problem = make_problem(nv=2)
        evaluator = SimulationEvaluator(problem.simulate)
        determine_minimum_wordlengths(problem, evaluator)
        assert all(r.phase == "min" for r in evaluator.trace.records)


class TestAlgorithm2:
    def test_final_configuration_satisfies(self):
        problem = make_problem(nv=3, threshold=-55.0)
        evaluator = SimulationEvaluator(problem.simulate)
        wmin = determine_minimum_wordlengths(problem, evaluator)
        wres, value = optimize_wordlengths(problem, evaluator, wmin)
        assert problem.satisfied(value)
        assert np.all(wres >= wmin)

    def test_removing_any_committed_bit_violates(self):
        """Greedy minimality: wres minus one committed bit must violate."""
        # -56 dB: the individual minima land at -60.2 dB each, so the
        # combined wmin sits at -55.4 dB and violates -> the greedy runs.
        problem = make_problem(nv=3, threshold=-56.0)
        evaluator = SimulationEvaluator(problem.simulate)
        wmin = determine_minimum_wordlengths(problem, evaluator)
        wres, _ = optimize_wordlengths(problem, evaluator, wmin)
        assert evaluator.trace.decisions, "greedy phase did not run"
        # The last committed increment is the step that crossed the
        # threshold; undoing it must violate the constraint.
        last = evaluator.trace.decisions[-1]
        w = wres.copy()
        w[last] -= 1
        assert not problem.satisfied(problem.simulate(w))

    def test_already_satisfied_wmin_returns_immediately(self):
        problem = make_problem(nv=2, threshold=-10.0)
        evaluator = SimulationEvaluator(problem.simulate)
        wres, value = optimize_wordlengths(
            problem, evaluator, np.array([8, 8])
        )
        np.testing.assert_array_equal(wres, [8, 8])
        assert evaluator.trace.decisions == []

    def test_infeasible_problem_saturates(self):
        problem = make_problem(nv=2, threshold=-1000.0)
        evaluator = SimulationEvaluator(problem.simulate)
        wres, value = optimize_wordlengths(problem, evaluator, np.array([15, 15]))
        np.testing.assert_array_equal(wres, [16, 16])
        assert not problem.satisfied(value)

    def test_decisions_recorded(self):
        problem = make_problem(nv=3, threshold=-60.0)
        evaluator = SimulationEvaluator(problem.simulate)
        wmin = determine_minimum_wordlengths(problem, evaluator)
        wres, _ = optimize_wordlengths(problem, evaluator, wmin)
        committed = int(np.sum(wres - wmin))
        assert len(evaluator.trace.decisions) == committed

    def test_wmin_shape_validated(self):
        problem = make_problem(nv=3)
        with pytest.raises(ValueError, match="wmin"):
            optimize_wordlengths(
                problem, SimulationEvaluator(problem.simulate), np.array([8, 8])
            )


class TestBundle:
    def test_run_result_fields(self):
        problem = make_problem(nv=3, threshold=-55.0)
        result = MinPlusOneOptimizer(problem).run()
        assert result.satisfied
        assert result.cost == pytest.approx(float(np.sum(result.solution)))
        assert problem.satisfied(result.solution_value)
        assert len(result.trace) > 0
        assert all(len(c) == 3 for c in (result.solution, result.minimum))

    def test_higher_is_better_problem(self):
        # Same surface expressed as an accuracy (sign flipped).
        metric = additive_noise_db(np.ones(2))
        problem = DSEProblem(
            name="acc",
            num_variables=2,
            min_value=1,
            max_value=16,
            simulate=lambda w: -metric(w),
            sense=MetricSense.HIGHER_IS_BETTER,
            threshold=55.0,
        )
        result = MinPlusOneOptimizer(problem).run()
        assert result.satisfied
        assert result.solution_value >= 55.0

    def test_greedy_result_at_least_as_costly_as_wmin(self):
        problem = make_problem(nv=4, threshold=-58.0)
        result = MinPlusOneOptimizer(problem).run()
        assert problem.cost(np.array(result.solution)) >= problem.cost(
            np.array(result.minimum)
        )
