"""Unit tests for repro.core.neighborhood and repro.core.cache."""

import numpy as np
import pytest

from repro.core.cache import SimulationCache
from repro.core.neighborhood import find_neighbors


class TestFindNeighbors:
    PTS = np.array([[0, 0], [1, 0], [2, 2], [5, 5]])

    def test_within_distance(self):
        idx = find_neighbors(self.PTS, np.array([0, 0]), 2.0)
        assert set(idx.tolist()) == {0, 1}

    def test_ordering_by_distance(self):
        idx = find_neighbors(self.PTS, np.array([1, 1]), 10.0)
        dists = [abs(self.PTS[i] - [1, 1]).sum() for i in idx]
        assert dists == sorted(dists)

    def test_boundary_inclusive(self):
        # Algorithms 1-2: dCur <= d keeps the configuration.
        idx = find_neighbors(self.PTS, np.array([0, 0]), 1.0)
        assert 1 in idx.tolist()

    def test_empty_points(self):
        idx = find_neighbors(np.empty((0, 2)), np.array([0, 0]), 3.0)
        assert idx.size == 0

    def test_max_neighbors_cap(self):
        idx = find_neighbors(self.PTS, np.array([0, 0]), 100.0, max_neighbors=2)
        assert idx.tolist() == [0, 1]

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            find_neighbors(self.PTS, np.array([0, 0]), -1.0)

    def test_bad_max_neighbors_rejected(self):
        with pytest.raises(ValueError, match="max_neighbors"):
            find_neighbors(self.PTS, np.array([0, 0]), 1.0, max_neighbors=0)

    def test_metric_choice(self):
        idx_l1 = find_neighbors(self.PTS, np.array([1, 1]), 2.0, metric="l1")
        idx_linf = find_neighbors(self.PTS, np.array([1, 1]), 2.0, metric="linf")
        assert set(idx_linf.tolist()) >= set(idx_l1.tolist())


class TestSimulationCache:
    def test_empty_cache(self):
        cache = SimulationCache(3)
        assert len(cache) == 0
        assert cache.points.shape == (0, 3)
        assert cache.values.shape == (0,)
        assert cache.lookup([1, 2, 3]) is None

    def test_add_and_lookup(self):
        cache = SimulationCache(2)
        cache.add([4, 5], -60.0)
        assert len(cache) == 1
        assert cache.lookup([4, 5]) == -60.0
        assert [4, 5] in cache
        assert [4, 6] not in cache

    def test_points_values_aligned(self):
        cache = SimulationCache(2)
        cache.add([1, 1], 1.0)
        cache.add([2, 2], 2.0)
        np.testing.assert_array_equal(cache.points, [[1, 1], [2, 2]])
        np.testing.assert_array_equal(cache.values, [1.0, 2.0])

    def test_duplicate_rejected(self):
        cache = SimulationCache(2)
        cache.add([1, 1], 1.0)
        with pytest.raises(ValueError, match="already simulated"):
            cache.add([1, 1], 2.0)

    def test_shape_validation(self):
        cache = SimulationCache(2)
        with pytest.raises(ValueError, match="shape"):
            cache.add([1, 2, 3], 1.0)

    def test_nonfinite_value_rejected(self):
        cache = SimulationCache(1)
        with pytest.raises(ValueError, match="finite"):
            cache.add([1], float("nan"))

    def test_invalid_dimension_rejected(self):
        with pytest.raises(ValueError, match=">= 1"):
            SimulationCache(0)

    def test_int_and_float_representations_match(self):
        cache = SimulationCache(2)
        cache.add(np.array([1.0, 2.0]), 5.0)
        assert cache.lookup(np.array([1, 2])) == 5.0

    def test_non_lattice_configurations_are_distinct(self):
        """Keys are exact coordinates: no round-to-int collisions."""
        cache = SimulationCache(1)
        cache.add([0.4], 1.0)
        cache.add([0.2], 2.0)  # seed keyed both to int 0 -> false duplicate
        cache.add([0.6], 3.0)
        assert cache.lookup([0.4]) == 1.0
        assert cache.lookup([0.2]) == 2.0
        assert cache.lookup([0.6]) == 3.0
        assert cache.lookup([0.0]) is None
        assert len(cache) == 3

    def test_malformed_shapes_rejected_by_lookup(self):
        """A (1, Nv) array must not byte-collide with its (Nv,) key."""
        cache = SimulationCache(2)
        cache.add([1.0, 2.0], 5.0)
        with pytest.raises(ValueError, match="shape"):
            cache.lookup(np.array([[1.0, 2.0]]))
        with pytest.raises(ValueError, match="shape"):
            np.array([[1.0, 2.0]]) in cache
        with pytest.raises(ValueError, match="shape"):
            cache.lookup([1.0, 2.0, 3.0])

    def test_negative_zero_folds_to_zero(self):
        cache = SimulationCache(1)
        cache.add([0.0], 7.0)
        assert cache.lookup([-0.0]) == 7.0

    def test_points_is_o1_view_and_readonly(self):
        cache = SimulationCache(2)
        for i in range(5):
            cache.add([i, i], float(i))
        pts = cache.points
        assert pts.base is not None  # a view, not a fresh vstack
        assert not pts.flags.writeable
        assert not cache.values.flags.writeable

    def test_growth_preserves_contents_and_indices(self):
        cache = SimulationCache(3)
        rows = [cache.add([i, 2 * i, 3 * i], float(i)) for i in range(200)]
        assert rows == list(range(200))
        np.testing.assert_array_equal(
            cache.points,
            np.array([[i, 2 * i, 3 * i] for i in range(200)], dtype=float),
        )
        np.testing.assert_array_equal(cache.values, np.arange(200, dtype=float))

    def test_views_survive_growth(self):
        cache = SimulationCache(1)
        cache.add([1.0], 1.0)
        old = cache.points
        for i in range(2, 300):
            cache.add([float(i)], float(i))
        # The pre-growth view still shows the rows it covered.
        np.testing.assert_array_equal(old, [[1.0]])
