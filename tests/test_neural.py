"""Unit tests for the SqueezeNet sensitivity benchmark (repro.neural)."""

import numpy as np
import pytest

from repro.neural.classification import classification_match_rate
from repro.neural.dataset import SyntheticImageDataset
from repro.neural.injection import ErrorSourceGrid, SensitivityBenchmark
from repro.neural.layers import conv2d, global_avg_pool, maxpool2d, relu
from repro.neural.squeezenet import INJECTION_POINTS, FireModule, SqueezeNetModel


class TestLayers:
    def test_conv2d_identity_kernel(self, rng):
        x = rng.normal(size=(2, 3, 8, 8))
        w = np.zeros((3, 3, 1, 1))
        for c in range(3):
            w[c, c, 0, 0] = 1.0
        np.testing.assert_allclose(conv2d(x, w), x)

    def test_conv2d_matches_manual(self, rng):
        x = rng.normal(size=(1, 1, 5, 5))
        w = rng.normal(size=(1, 1, 3, 3))
        out = conv2d(x, w)  # valid mode: out[0,0,0,0] is centred at x[1,1]
        manual = sum(
            x[0, 0, 1 + di, 1 + dj] * w[0, 0, 1 + di, 1 + dj]
            for di in (-1, 0, 1)
            for dj in (-1, 0, 1)
        )
        assert out[0, 0, 0, 0] == pytest.approx(manual)

    def test_conv2d_padding_and_stride(self, rng):
        x = rng.normal(size=(1, 2, 8, 8))
        w = rng.normal(size=(4, 2, 3, 3))
        assert conv2d(x, w, padding=1).shape == (1, 4, 8, 8)
        assert conv2d(x, w, padding=1, stride=2).shape == (1, 4, 4, 4)

    def test_conv2d_bias(self, rng):
        x = np.zeros((1, 1, 4, 4))
        w = np.zeros((2, 1, 1, 1))
        out = conv2d(x, w, bias=np.array([1.5, -2.0]))
        assert np.all(out[0, 0] == 1.5)
        assert np.all(out[0, 1] == -2.0)

    def test_conv2d_validation(self, rng):
        with pytest.raises(ValueError, match="channel mismatch"):
            conv2d(np.zeros((1, 2, 4, 4)), np.zeros((1, 3, 3, 3)))
        with pytest.raises(ValueError, match="smaller than kernel"):
            conv2d(np.zeros((1, 1, 2, 2)), np.zeros((1, 1, 5, 5)))
        with pytest.raises(ValueError, match="stride"):
            conv2d(np.zeros((1, 1, 4, 4)), np.zeros((1, 1, 3, 3)), stride=0)

    def test_relu(self):
        np.testing.assert_allclose(relu(np.array([-1.0, 0.0, 2.0])), [0.0, 0.0, 2.0])

    def test_maxpool(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = maxpool2d(x)
        np.testing.assert_allclose(out[0, 0], [[5, 7], [13, 15]])

    def test_global_avg_pool(self, rng):
        x = rng.normal(size=(2, 3, 4, 4))
        np.testing.assert_allclose(global_avg_pool(x), x.mean(axis=(2, 3)))


class TestModel:
    @pytest.fixture(scope="class")
    def model(self):
        return SqueezeNetModel(seed=7)

    def test_ten_injection_points(self, model):
        assert model.num_injection_points == 10
        assert len(INJECTION_POINTS) == 10

    def test_forward_shape(self, model, rng):
        images = rng.uniform(size=(4, 3, 32, 32))
        assert model.forward(images).shape == (4, 10)

    def test_perturb_hook_sees_all_points(self, model, rng):
        seen = []
        images = rng.uniform(size=(1, 3, 32, 32))
        model.forward(images, perturb=lambda name, x: (seen.append(name), x)[1])
        assert seen == list(INJECTION_POINTS)

    def test_deterministic_weights(self, rng):
        a = SqueezeNetModel(seed=3)
        b = SqueezeNetModel(seed=3)
        np.testing.assert_array_equal(a.conv1_w, b.conv1_w)
        images = rng.uniform(size=(2, 3, 32, 32))
        np.testing.assert_array_equal(a.forward(images), b.forward(images))

    def test_fire_module_channels(self, rng):
        fire = FireModule.create(np.random.default_rng(0), 16, 4, 8)
        assert fire.out_channels == 16
        out = fire.forward(rng.uniform(size=(1, 16, 8, 8)))
        assert out.shape == (1, 16, 8, 8)

    def test_predictions_diverse(self, model):
        ds = SyntheticImageDataset(n_images=64, size=32, seed=11)
        preds = model.predict(ds.images)
        assert len(np.unique(preds)) >= 3

    def test_input_validation(self, model):
        with pytest.raises(ValueError, match="images"):
            model.forward(np.zeros((1, 1, 32, 32)))


class TestDataset:
    def test_shapes_and_range(self):
        ds = SyntheticImageDataset(n_images=16, size=16, seed=0)
        assert ds.images.shape == (16, 3, 16, 16)
        assert ds.labels.shape == (16,)
        assert ds.images.min() >= 0.0
        assert ds.images.max() <= 1.0
        assert len(ds) == 16

    def test_deterministic(self):
        a = SyntheticImageDataset(n_images=8, size=16, seed=5)
        b = SyntheticImageDataset(n_images=8, size=16, seed=5)
        np.testing.assert_array_equal(a.images, b.images)

    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticImageDataset(n_images=0)
        with pytest.raises(ValueError):
            SyntheticImageDataset(n_images=4, size=4)


class TestGrid:
    def test_power_mapping(self):
        grid = ErrorSourceGrid(base_db=0.0, step_db=6.0, max_level=16)
        assert grid.power_db(0) == 0.0
        assert grid.power_db(10) == -60.0
        assert grid.power(10) == pytest.approx(1e-6)
        assert grid.std(10) == pytest.approx(1e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            ErrorSourceGrid(step_db=0.0)
        with pytest.raises(ValueError):
            ErrorSourceGrid(max_level=1)


class TestClassificationRate:
    def test_full_match(self):
        assert classification_match_rate([1, 2, 3], [1, 2, 3]) == 1.0

    def test_partial_match(self):
        assert classification_match_rate([1, 2, 3, 4], [1, 2, 0, 0]) == 0.5

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            classification_match_rate([1], [1, 2])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            classification_match_rate([], [])


class TestSensitivityBenchmark:
    @pytest.fixture(scope="class")
    def bench(self):
        return SensitivityBenchmark(n_images=32, image_size=16, seed=5)

    def test_clean_levels_give_perfect_pcl(self, bench):
        assert bench.evaluate([16] * 10) == pytest.approx(1.0)

    def test_heavy_noise_degrades_pcl(self, bench):
        assert bench.evaluate([2] * 10) < 0.9

    def test_deterministic_per_configuration(self, bench):
        assert bench.evaluate([8] * 10) == bench.evaluate([8] * 10)

    def test_different_configs_different_noise(self, bench):
        # Distinct configurations draw distinct noise realizations.
        a = bench.evaluate([6] * 10)
        b = bench.evaluate([6] * 9 + [7])
        assert isinstance(a, float) and isinstance(b, float)

    def test_wrong_length_rejected(self, bench):
        with pytest.raises(ValueError, match="expected 10"):
            bench.evaluate([8] * 9)

    def test_pcl_in_unit_interval(self, bench):
        for level in (1, 4, 12):
            assert 0.0 <= bench.evaluate([level] * 10) <= 1.0
