"""Unit tests for repro.fixedpoint.noise (Eqs. 11-12 and helpers)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fixedpoint.noise import (
    bit_difference,
    bit_difference_db,
    db_to_power,
    equivalent_bits,
    noise_power,
    noise_power_db,
    power_to_db,
    relative_difference,
    uniform_quantization_noise_power,
)


class TestNoisePower:
    def test_zero_for_identical(self):
        x = np.array([0.1, -0.2, 0.5])
        assert noise_power(x, x) == 0.0

    def test_mse_value(self):
        a = np.array([1.0, 2.0])
        b = np.array([0.0, 0.0])
        assert noise_power(a, b) == pytest.approx(2.5)

    def test_complex_inputs(self):
        a = np.array([1 + 1j, 0 + 0j])
        b = np.zeros(2, dtype=complex)
        assert noise_power(a, b) == pytest.approx(1.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shape mismatch"):
            noise_power(np.zeros(3), np.zeros(4))

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            noise_power(np.zeros(0), np.zeros(0))

    def test_db_conversion_consistent(self):
        a = np.full(10, 0.1)
        b = np.zeros(10)
        assert noise_power_db(a, b) == pytest.approx(power_to_db(0.01))


class TestDbConversions:
    @given(st.floats(min_value=-200.0, max_value=100.0))
    def test_roundtrip(self, db):
        assert power_to_db(db_to_power(db)) == pytest.approx(db, abs=1e-9)

    def test_floor_for_zero_power(self):
        assert power_to_db(0.0) == pytest.approx(-3000.0)


class TestEquivalentBits:
    def test_physical_convention(self):
        # P = 2^(-2n)/12 with n = 8 fractional bits.
        power = uniform_quantization_noise_power(2.0**-8)
        assert equivalent_bits(power) == pytest.approx(8.0)

    def test_paper_convention_doubles(self):
        power = uniform_quantization_noise_power(2.0**-8)
        assert equivalent_bits(power, convention="paper") == pytest.approx(16.0)

    def test_unknown_convention_rejected(self):
        with pytest.raises(ValueError, match="convention"):
            equivalent_bits(0.1, convention="nonsense")


class TestBitDifference:
    def test_one_bit_is_six_db(self):
        assert bit_difference_db(-60.0, -66.02) == pytest.approx(1.0, abs=1e-3)

    def test_paper_convention_is_three_db(self):
        assert bit_difference_db(-60.0, -63.01, convention="paper") == pytest.approx(
            1.0, abs=1e-3
        )

    def test_symmetry(self):
        assert bit_difference(1e-6, 4e-6) == pytest.approx(bit_difference(4e-6, 1e-6))

    def test_zero_for_equal(self):
        assert bit_difference(1e-7, 1e-7) == 0.0

    @given(
        st.floats(min_value=-120, max_value=0),
        st.floats(min_value=-120, max_value=0),
    )
    def test_db_and_linear_agree(self, a_db, b_db):
        linear = bit_difference(db_to_power(a_db), db_to_power(b_db))
        assert linear == pytest.approx(bit_difference_db(a_db, b_db), abs=1e-9)

    def test_matches_equivalent_bits_difference(self):
        p1, p2 = 1e-5, 3e-7
        expected = abs(equivalent_bits(p1) - equivalent_bits(p2))
        assert bit_difference(p1, p2) == pytest.approx(expected)


class TestRelativeDifference:
    def test_value(self):
        assert relative_difference(0.95, 1.0) == pytest.approx(0.05)

    def test_zero_truth_rejected(self):
        with pytest.raises(ZeroDivisionError):
            relative_difference(0.5, 0.0)

    @given(
        st.floats(min_value=0.01, max_value=1.0),
        st.floats(min_value=0.01, max_value=1.0),
    )
    def test_nonnegative(self, a, b):
        assert relative_difference(a, b) >= 0.0


class TestUniformNoise:
    def test_formula(self):
        assert uniform_quantization_noise_power(0.5) == pytest.approx(0.25 / 12)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            uniform_quantization_noise_power(0.0)

    def test_quantizer_matches_model(self, rng):
        # Empirical quantization noise should track step^2/12 within ~20 %.
        from repro.fixedpoint.qformat import QFormat
        from repro.fixedpoint.quantize import quantize

        fmt = QFormat(integer_bits=0, frac_bits=8)
        x = rng.uniform(-0.99, 0.99, size=200000)
        measured = noise_power(quantize(x, fmt), x)
        model = uniform_quantization_noise_power(fmt.step)
        assert measured == pytest.approx(model, rel=0.2)
