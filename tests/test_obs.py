"""Unit tests for ``repro.obs``: tracer, metrics registry, JSON logging.

The integration-level tracing contract (one trace across client → router →
worker → flush → solve phases) lives in ``test_obs_tracing.py``; this file
pins the building blocks those tests are made of.
"""

import json
import logging

import pytest

from repro.obs.logs import JsonFormatter, configure_logging, get_logger, trace_id_var
from repro.obs.metrics import (
    MetricsRegistry,
    aggregate_families,
    render_prometheus,
)
from repro.obs.trace import (
    SLOW_TRACE_BUFFER,
    Tracer,
    new_span_id,
    new_trace_id,
    wire_context,
)


class TestIds:
    def test_shapes(self):
        trace_id = new_trace_id()
        span_id = new_span_id()
        assert len(trace_id) == 32 and int(trace_id, 16) >= 0
        assert len(span_id) == 16 and int(span_id, 16) >= 0

    def test_distinct(self):
        assert len({new_trace_id() for _ in range(100)}) == 100


class TestWireContext:
    def test_absent_means_untraced(self):
        assert wire_context({"op": "evaluate"}) is None

    @pytest.mark.parametrize("bad", ["", None, 7, ["x"], {"a": 1}])
    def test_malformed_trace_id_is_lenient(self, bad):
        # Like Deadline.from_request: garbage means "not traced", never an
        # error — old clients must keep working.
        assert wire_context({"trace_id": bad}) is None

    def test_parent_optional_and_lenient(self):
        assert wire_context({"trace_id": "ab" * 16}) == ("ab" * 16, None)
        assert wire_context({"trace_id": "ab" * 16, "parent_span": 9}) == (
            "ab" * 16,
            None,
        )
        assert wire_context(
            {"trace_id": "ab" * 16, "parent_span": "cd" * 8}
        ) == ("ab" * 16, "cd" * 8)


class TestTracer:
    def test_sampling_zero_allocates_nothing(self):
        tracer = Tracer(sample_rate=0.0)
        assert tracer.start_trace("client.request") is None
        assert tracer.start("server.dispatch", None, context=None) is None
        tracer.finish(None)  # the no-guard idiom at call sites
        assert tracer.started == 0
        assert tracer.finished == 0
        assert tracer.spans() == []

    def test_sampling_one_always_traces(self):
        tracer = Tracer(sample_rate=1.0)
        span = tracer.start_trace("client.request", attrs={"op": "evaluate"})
        assert span is not None
        tracer.finish(span, root=True)
        (record,) = tracer.spans()
        assert record["name"] == "client.request"
        assert record["attrs"] == {"op": "evaluate"}
        assert record["parent_id"] is None
        assert record["end_ms"] >= record["start_ms"]

    @pytest.mark.parametrize("rate", [-0.1, 1.5])
    def test_sample_rate_validated(self, rate):
        with pytest.raises(ValueError):
            Tracer(sample_rate=rate)

    def test_child_spans_inherit_trace_and_parent(self):
        tracer = Tracer(sample_rate=1.0)
        root = tracer.start_trace("root")
        child = tracer.start("child", root)
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        from_wire = tracer.start("hop", None, context=("ff" * 16, "ee" * 8))
        assert from_wire.trace_id == "ff" * 16
        assert from_wire.parent_id == "ee" * 8

    def test_ring_is_bounded(self):
        tracer = Tracer(sample_rate=1.0, ring_size=4)
        for i in range(10):
            tracer.finish(tracer.start_trace(f"s{i}"))
        names = [rec["name"] for rec in tracer.spans()]
        assert names == ["s6", "s7", "s8", "s9"]
        assert tracer.finished == 10

    def test_slow_root_promotes_whole_trace(self):
        tracer = Tracer(sample_rate=1.0, slow_ms=0.0)
        root = tracer.start_trace("server.dispatch")
        tracer.finish(tracer.start("batch.flush", root))
        tracer.finish(root, root=True)
        (slow,) = tracer.slow_traces()
        assert slow["trace_id"] == root.trace_id
        assert slow["root"] == "server.dispatch"
        assert {s["name"] for s in slow["spans"]} == {
            "batch.flush",
            "server.dispatch",
        }
        assert tracer.slow_traces_captured == 1
        # Non-root spans never trigger capture.
        tracer.finish(tracer.start_trace("not-a-root"))
        assert len(tracer.slow_traces()) == 1

    def test_slow_buffer_bounded_and_drainable(self):
        tracer = Tracer(sample_rate=1.0, slow_ms=0.0)
        for _ in range(SLOW_TRACE_BUFFER + 5):
            tracer.finish(tracer.start_trace("r"), root=True)
        assert len(tracer.slow_traces()) == SLOW_TRACE_BUFFER
        drained = tracer.drain_slow()
        assert len(drained) == SLOW_TRACE_BUFFER
        assert tracer.slow_traces() == []

    def test_emit_post_hoc_span(self):
        tracer = Tracer()
        record = tracer.emit(
            "server.queue_wait", "ab" * 16, "cd" * 8, 10.0, 10.5, attrs={"n": 3}
        )
        assert record["duration_ms"] == pytest.approx(500.0)
        assert record["parent_id"] == "cd" * 8
        assert tracer.spans("ab" * 16) == [record]
        # end < start is clamped, never negative.
        clamped = tracer.emit("x", "ab" * 16, None, 10.0, 9.0)
        assert clamped["duration_ms"] == 0.0

    def test_record_phases_lays_durations_end_to_end(self):
        tracer = Tracer()
        tracer.record_phases(
            "ab" * 16,
            "cd" * 8,
            100.0,
            [("solve.assembly", 0.25), ("solve.factorize", 1.0), ("solve.backsolve", 0.5)],
        )
        spans = tracer.spans("ab" * 16)
        assert [s["name"] for s in spans] == [
            "solve.assembly",
            "solve.factorize",
            "solve.backsolve",
        ]
        for earlier, later in zip(spans, spans[1:]):
            assert later["start_ms"] == pytest.approx(earlier["end_ms"])
        assert spans[0]["start_ms"] == pytest.approx(100.0 * 1000.0)
        assert spans[-1]["end_ms"] == pytest.approx((100.0 + 1.75) * 1000.0)


class TestMetricsRegistry:
    def test_counter_gauge_histogram_collect(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_a_total", "help a")
        gauge = registry.gauge("repro_b", "help b")
        hist = registry.histogram("repro_c_ms", "help c")
        counter.inc()
        counter.inc(2.0)
        gauge.set(7.0)
        for v in (1.0, 2.0, 3.0):
            hist.observe(v)
        families = registry.collect()
        assert [f["name"] for f in families] == [
            "repro_a_total",
            "repro_b",
            "repro_c_ms",
        ]
        by_name = {f["name"]: f for f in families}
        assert by_name["repro_a_total"]["samples"] == [
            {"labels": {}, "value": 3.0}
        ]
        assert by_name["repro_b"]["samples"][0]["value"] == 7.0
        hist_sample = by_name["repro_c_ms"]["samples"][0]
        assert hist_sample["count"] == 3
        assert hist_sample["sum"] == pytest.approx(6.0)
        assert hist_sample["min"] == 1.0 and hist_sample["max"] == 3.0

    def test_counters_are_monotone(self):
        counter = MetricsRegistry().counter("repro_x_total")
        with pytest.raises(ValueError):
            counter.inc(-1.0)

    def test_duplicate_registration_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_dup_total")
        with pytest.raises(ValueError):
            registry.gauge("repro_dup_total")

    def test_callback_metrics_read_at_collect_time(self):
        registry = MetricsRegistry()
        box = {"n": 0.0}
        registry.counter_fn("repro_cb_total", lambda: box["n"])
        registry.gauge_fn(
            "repro_state",
            lambda: [({"worker": "w0"}, 1.0), ({"worker": "w1"}, 2.0)],
        )
        box["n"] = 5.0  # mutated after registration: fn is live, not a copy
        by_name = {f["name"]: f for f in registry.collect()}
        assert by_name["repro_cb_total"]["samples"][0]["value"] == 5.0
        assert by_name["repro_state"]["samples"] == [
            {"labels": {"worker": "w0"}, "value": 1.0},
            {"labels": {"worker": "w1"}, "value": 2.0},
        ]

    def test_value_sums_label_sets(self):
        registry = MetricsRegistry()
        registry.counter_fn(
            "repro_multi_total", lambda: [({"w": "a"}, 2.0), ({"w": "b"}, 3.0)]
        )
        hist = registry.histogram("repro_h_ms")
        hist.observe(1.0)
        assert registry.value("repro_multi_total") == 5.0
        assert registry.value("repro_h_ms") == 1.0  # histograms: total count
        with pytest.raises(KeyError):
            registry.value("repro_missing")

    def test_empty_histogram_is_json_safe(self):
        registry = MetricsRegistry()
        registry.histogram("repro_empty_ms")
        (family,) = registry.collect()
        sample = family["samples"][0]
        assert sample["count"] == 0
        assert sample["min"] is None and sample["max"] is None
        assert all(v is None for v in sample["quantiles"].values())
        # The whole snapshot must survive strict json (the verb path):
        # NaN/inf would produce invalid JSON for wire clients.
        json.dumps(registry.collect(), allow_nan=False)


class TestAggregateFamilies:
    def _worker(self, misses: float, waits: list[float]) -> list[dict]:
        registry = MetricsRegistry()
        counter = registry.counter("repro_deadline_misses_total")
        counter.inc(misses)
        hist = registry.histogram("repro_queue_wait_ms")
        for v in waits:
            hist.observe(v)
        return registry.collect()

    def test_counters_sum_and_histograms_merge(self):
        merged = aggregate_families(
            [self._worker(2.0, [1.0, 2.0]), self._worker(3.0, [10.0, 20.0])]
        )
        by_name = {f["name"]: f for f in merged}
        assert by_name["repro_deadline_misses_total"]["samples"][0]["value"] == 5.0
        hist = by_name["repro_queue_wait_ms"]["samples"][0]
        assert hist["count"] == 4
        assert hist["sum"] == pytest.approx(33.0)
        assert hist["min"] == 1.0 and hist["max"] == 20.0

    def test_distinct_label_sets_union(self):
        a = [
            {
                "name": "repro_breaker_state",
                "type": "gauge",
                "help": "",
                "samples": [{"labels": {"worker": "w0"}, "value": 0.0}],
            }
        ]
        b = [
            {
                "name": "repro_breaker_state",
                "type": "gauge",
                "help": "",
                "samples": [{"labels": {"worker": "w1"}, "value": 2.0}],
            }
        ]
        (family,) = aggregate_families([a, b])
        assert {
            s["labels"]["worker"]: s["value"] for s in family["samples"]
        } == {"w0": 0.0, "w1": 2.0}

    def test_merge_with_empty_histogram_keeps_other_side(self):
        merged = aggregate_families([self._worker(0.0, []), self._worker(0.0, [4.0])])
        hist = {f["name"]: f for f in merged}["repro_queue_wait_ms"]["samples"][0]
        assert hist["count"] == 1
        assert hist["min"] == 4.0 and hist["max"] == 4.0
        assert hist["quantiles"]["0.5"] == 4.0

    def test_same_shape_as_input(self):
        # The structural-identity contract: a merged snapshot has exactly
        # the shape of a single worker's snapshot.
        single = self._worker(1.0, [1.0])
        merged = aggregate_families([single, self._worker(2.0, [2.0])])
        assert [f["name"] for f in merged] == [f["name"] for f in single]
        for fam_m, fam_s in zip(merged, single):
            assert set(fam_m) == set(fam_s)
            assert set(fam_m["samples"][0]) == set(fam_s["samples"][0])


class TestRenderPrometheus:
    def test_text_exposition(self):
        registry = MetricsRegistry()
        registry.counter("repro_a_total", "things counted").inc(3.0)
        registry.gauge_fn("repro_state", lambda: [({"worker": "w0"}, 1.0)])
        hist = registry.histogram("repro_wait_ms", "waits")
        hist.observe(2.0)
        text = render_prometheus(registry.collect())
        assert "# HELP repro_a_total things counted" in text
        assert "# TYPE repro_a_total counter" in text
        assert "repro_a_total 3.0" in text
        assert 'repro_state{worker="w0"} 1.0' in text
        assert "# TYPE repro_wait_ms summary" in text
        assert 'repro_wait_ms{quantile="0.5"} 2.0' in text
        assert "repro_wait_ms_sum 2.0" in text
        assert "repro_wait_ms_count 1" in text
        assert text.endswith("\n")

    def test_empty_histogram_renders_nan(self):
        registry = MetricsRegistry()
        registry.histogram("repro_empty_ms")
        text = render_prometheus(registry.collect())
        assert 'repro_empty_ms{quantile="0.5"} NaN' in text

    def test_label_escaping(self):
        families = [
            {
                "name": "repro_g",
                "type": "gauge",
                "help": "",
                "samples": [{"labels": {"k": 'a"b\\c'}, "value": 1.0}],
            }
        ]
        assert 'repro_g{k="a\\"b\\\\c"} 1.0' in render_prometheus(families)


class TestJsonLogging:
    def _format(self, make_record):
        logger = logging.getLogger("repro.test_obs")
        record = make_record(logger)
        return json.loads(JsonFormatter().format(record))

    def _record(self, logger, level=logging.WARNING, msg="boom", **extra):
        record = logger.makeRecord(
            logger.name, level, __file__, 1, msg, (), None, extra=extra
        )
        return record

    def test_one_json_object_with_extras(self):
        payload = self._format(
            lambda lg: self._record(lg, msg="replication failed", session="s0")
        )
        assert payload["level"] == "warning"
        assert payload["logger"] == "repro.test_obs"
        assert payload["message"] == "replication failed"
        assert payload["session"] == "s0"
        assert payload["ts"].endswith("Z")

    def test_trace_id_correlation_via_contextvar(self):
        token = trace_id_var.set("ab" * 16)
        try:
            payload = self._format(lambda lg: self._record(lg))
            assert payload["trace_id"] == "ab" * 16
        finally:
            trace_id_var.reset(token)
        payload = self._format(lambda lg: self._record(lg))
        assert "trace_id" not in payload

    def test_exceptions_collapse_to_repr_never_traceback(self):
        def make(logger):
            try:
                raise RuntimeError("kaput")
            except RuntimeError:
                import sys

                record = logger.makeRecord(
                    logger.name, logging.ERROR, __file__, 1, "failed", (), sys.exc_info()
                )
            return record

        rendered = JsonFormatter().format(make(logging.getLogger("repro.test_obs")))
        assert "Traceback" not in rendered
        assert json.loads(rendered)["exc"] == "RuntimeError('kaput')"

    def test_configure_logging_idempotent(self):
        import io

        logger = configure_logging("debug", stream=io.StringIO())
        try:
            configure_logging("info", stream=io.StringIO())
            ours = [h for h in logger.handlers if getattr(h, "_repro_obs", False)]
            assert len(ours) == 1
            assert logger.level == logging.INFO
            assert logger.propagate is False
            with pytest.raises(ValueError):
                configure_logging("loud")
        finally:
            for handler in list(logger.handlers):
                if getattr(handler, "_repro_obs", False):
                    logger.removeHandler(handler)

    def test_get_logger_namespacing(self):
        assert get_logger("cluster").name == "repro.cluster"
        assert get_logger("repro.service").name == "repro.service"
        assert get_logger("repro").name == "repro"
