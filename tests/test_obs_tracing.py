"""End-to-end tracing and metrics-verb tests against live servers.

The tentpole contract: with tracing on, ONE cluster evaluate yields one
trace whose spans cover client → router dispatch → admission → worker
dispatch → batch flush → solve phases, with correct parentage and
monotone bounds — and with sampling off the serving stack allocates no
span at all (``Tracer.started == 0``).
"""

import asyncio

import numpy as np
import pytest

from cluster_testkit import NV, SESSION_KWARGS, run_cluster
from repro.service.client import AsyncServiceClient
from repro.service.server import KrigingService

TRACE_ID = "ab" * 16
CLIENT_SPAN = "cd" * 8


def _support(n=25, seed=0):
    rng = np.random.default_rng(seed)
    return np.unique(rng.integers(0, 6, size=(n, NV)), axis=0).astype(float)


def _by_name(spans):
    out = {}
    for span in spans:
        out.setdefault(span["name"], []).append(span)
    return out


async def _seed(client, session, support):
    await client.create_session(session, **SESSION_KWARGS)
    for row in support.tolist():
        await client.request("simulate", session=session, config=row)


class TestClusterTraceRoundTrip:
    def test_one_evaluate_yields_one_parented_trace(self, tmp_path):
        async def body(client, router, services, supervisor):
            support = _support()
            await _seed(client, "traced", support)
            result = await client.request(
                "evaluate",
                session="traced",
                config=[0.5, 0.5, 0.5],
                trace_id=TRACE_ID,
                parent_span=CLIENT_SPAN,
            )
            assert "value" in result

            # -- router hop ------------------------------------------------
            router_spans = _by_name(router.tracer.spans(TRACE_ID))
            (dispatch,) = router_spans["router.dispatch"]
            assert dispatch["parent_id"] == CLIENT_SPAN
            assert dispatch["attrs"]["op"] == "evaluate"
            (admission,) = router_spans["router.admission"]
            assert admission["parent_id"] == dispatch["span_id"]
            assert dispatch["start_ms"] <= admission["start_ms"]
            assert admission["end_ms"] <= dispatch["end_ms"]

            # -- worker hop (exactly one worker saw the trace) -------------
            traced_workers = [
                s for s in services if s.tracer.spans(TRACE_ID)
            ]
            assert len(traced_workers) == 1
            worker = _by_name(traced_workers[0].tracer.spans(TRACE_ID))
            (server_dispatch,) = worker["server.dispatch"]
            # The router restamped parent_span with its own dispatch span:
            # the worker's spans hang under the router hop, not the client.
            assert server_dispatch["parent_id"] == dispatch["span_id"]

            (queue_wait,) = worker["server.queue_wait"]
            assert queue_wait["parent_id"] == server_dispatch["span_id"]
            (flush,) = worker["batch.flush"]
            assert flush["parent_id"] == server_dispatch["span_id"]
            assert flush["attrs"]["batch_size"] >= 1
            assert server_dispatch["span_id"] in flush["attrs"]["links"]
            (lock_wait,) = worker["server.lock_wait"]
            assert lock_wait["parent_id"] == flush["span_id"]
            for phase in ("solve.assembly", "solve.factorize", "solve.backsolve"):
                (span,) = worker[phase]
                assert span["parent_id"] == flush["span_id"]

            # -- monotone bounds (worker clocks compare within-process) ----
            for spans in worker.values():
                for span in spans:
                    assert span["end_ms"] >= span["start_ms"]
            assert server_dispatch["start_ms"] <= queue_wait["start_ms"]
            assert queue_wait["end_ms"] <= flush["end_ms"]
            assert flush["end_ms"] <= server_dispatch["end_ms"] + 1e-6
            phases = [
                worker[name][0]
                for name in ("solve.assembly", "solve.factorize", "solve.backsolve")
            ]
            for earlier, later in zip(phases, phases[1:]):
                assert later["start_ms"] == pytest.approx(earlier["end_ms"])
            assert phases[0]["start_ms"] >= flush["start_ms"]

            # -- the traces verb returns the same tree, worker-tagged ------
            fetched = await client.request("traces", trace_id=TRACE_ID)
            assert all(s["trace_id"] == TRACE_ID for s in fetched["spans"])
            names = {s["name"] for s in fetched["spans"]}
            assert {
                "router.dispatch",
                "router.admission",
                "server.dispatch",
                "server.queue_wait",
                "batch.flush",
                "server.lock_wait",
                "solve.assembly",
                "solve.factorize",
                "solve.backsolve",
            } <= names
            worker_tags = {
                s.get("worker") for s in fetched["spans"] if "server." in s["name"]
            }
            assert len(worker_tags) == 1 and None not in worker_tags

        run_cluster(body, tmp_path=tmp_path)

    def test_client_edge_sampling_stamps_the_wire(self, tmp_path):
        async def body(client, router, services, supervisor):
            support = _support()
            await _seed(client, "edge", support)
            async with await AsyncServiceClient.connect(
                *router.address, trace_sample=1.0
            ) as traced:
                outcome = await traced.evaluate("edge", [0.5, 0.5, 0.5])
                assert outcome.value is not None
                (client_span,) = traced.tracer.spans()
                assert client_span["name"] == "client.request"
                # The whole downstream tree hangs under the client's span.
                router_spans = router.tracer.spans(client_span["trace_id"])
                dispatch = _by_name(router_spans)["router.dispatch"][0]
                assert dispatch["parent_id"] == client_span["span_id"]

        run_cluster(body, tmp_path=tmp_path)

    def test_values_bit_identical_with_tracing_on_and_off(self, tmp_path):
        # Two identically-seeded sessions see the identical query sequence,
        # one with every request traced, one untraced: the answers must
        # match exactly (not approximately) — observability reads clocks
        # and emits spans but never touches the numeric path.  (Re-running
        # queries on ONE session would compare cold vs warm factor-cache
        # solves, a last-ulp difference that has nothing to do with
        # tracing.)
        async def body(client, router, services, supervisor):
            support = _support()
            await _seed(client, "ident-off", support)
            await _seed(client, "ident-on", support)
            queries = [[0.5, 0.5, 0.5], [1.5, 0.25, 2.0], [3.0, 1.0, 0.0]]
            untraced = [
                (
                    await client.request(
                        "evaluate", session="ident-off", config=q
                    )
                )["value"]
                for q in queries
            ]
            traced = [
                (
                    await client.request(
                        "evaluate",
                        session="ident-on",
                        config=q,
                        trace_id=f"{i:032x}",
                        parent_span=CLIENT_SPAN,
                    )
                )["value"]
                for i, q in enumerate(queries, start=1)
            ]
            assert traced == untraced  # bit-identical, not approx

        run_cluster(body, tmp_path=tmp_path)

    def test_sampling_zero_allocates_no_spans(self, tmp_path):
        async def body(client, router, services, supervisor):
            support = _support()
            await _seed(client, "cold", support)
            for _ in range(3):
                await client.evaluate("cold", [0.5, 0.5, 0.5])
            assert router.tracer.started == 0
            assert router.tracer.spans() == []
            for service in services:
                assert service.tracer.started == 0
                assert service.tracer.spans() == []

        run_cluster(body, tmp_path=tmp_path)


class TestMetricsVerb:
    def test_router_output_structurally_identical_to_worker(self, tmp_path):
        async def body(client, router, services, supervisor):
            await _seed(client, "m0", _support())
            await client.evaluate("m0", [0.5, 0.5, 0.5])

            worker_result = await services[0]._op_metrics({})
            router_result = await client.request("metrics")
            for result in (worker_result, router_result):
                assert set(result) == {"families"}
                for family in result["families"]:
                    assert set(family) == {"name", "type", "help", "samples"}
                    assert family["type"] in ("counter", "gauge", "histogram")
                    for sample in family["samples"]:
                        assert "labels" in sample
                        if family["type"] == "histogram":
                            assert {"count", "sum", "min", "max", "quantiles"} <= set(
                                sample
                            )
                        else:
                            assert "value" in sample
                names = [f["name"] for f in result["families"]]
                assert names == sorted(names)

            merged = {f["name"]: f for f in router_result["families"]}
            # Fan-out aggregation: worker families are present in the
            # router's snapshot alongside the router-only ones.
            worker_names = {f["name"] for f in worker_result["families"]}
            assert worker_names <= set(merged)
            assert "repro_proxied_requests_total" in merged
            # Session gauges must not double-count across the fleet.
            sessions = sum(
                s["value"] for s in merged["repro_sessions"]["samples"]
            )
            assert sessions == 1.0
            assert (
                merged["repro_routed_sessions"]["samples"][0]["value"] == 1.0
            )
            # The wait histograms actually saw the evaluate above.
            queue = merged["repro_queue_wait_ms"]["samples"][0]
            assert queue["count"] >= 1

            local_only = await client.request("metrics", local=True)
            local_names = {f["name"] for f in local_only["families"]}
            assert "repro_queue_wait_ms" not in local_names
            assert "repro_routed_sessions" in local_names

        run_cluster(body, tmp_path=tmp_path)


class TestPingStatsAgreement:
    def test_deadline_misses_single_source(self):
        async def main():
            service = KrigingService()
            await service._op_create_session(
                {"session": "s", **SESSION_KWARGS}
            )
            session = service.sessions["s"]
            # Scatter misses across every counter that feeds the total:
            # dispatch-door sheds, session-lock sheds, flush-time sheds.
            service.deadline_misses += 2
            session.deadline_misses += 1
            session.batcher.stats.deadline_misses += 3
            ping = await service._op_ping({})
            stats = await service._op_stats({})
            assert ping["deadline_misses"] == 6
            assert stats["deadline_misses"] == 6
            assert service.metrics.value("repro_deadline_misses_total") == 6.0

        asyncio.run(main())
