"""Unit tests for repro.optimization.problem (Eq. 1)."""

import numpy as np
import pytest

from repro.optimization.problem import DSEProblem, MetricSense


def make_problem(**overrides):
    defaults = dict(
        name="toy",
        num_variables=3,
        min_value=2,
        max_value=16,
        simulate=lambda w: -float(np.sum(w)),
        sense=MetricSense.LOWER_IS_BETTER,
        threshold=-30.0,
    )
    defaults.update(overrides)
    return DSEProblem(**defaults)


class TestMetricSense:
    def test_lower_is_better_constraint(self):
        s = MetricSense.LOWER_IS_BETTER
        assert s.satisfied(-60.0, -50.0)
        assert not s.satisfied(-40.0, -50.0)
        assert s.satisfied(-50.0, -50.0)

    def test_higher_is_better_constraint(self):
        s = MetricSense.HIGHER_IS_BETTER
        assert s.satisfied(0.95, 0.9)
        assert not s.satisfied(0.85, 0.9)

    def test_is_better(self):
        assert MetricSense.LOWER_IS_BETTER.is_better(-60, -50)
        assert MetricSense.HIGHER_IS_BETTER.is_better(0.9, 0.8)
        assert not MetricSense.LOWER_IS_BETTER.is_better(-50, -50)

    def test_best_index(self):
        assert MetricSense.LOWER_IS_BETTER.best_index([3.0, 1.0, 2.0]) == 1
        assert MetricSense.HIGHER_IS_BETTER.best_index([3.0, 1.0, 2.0]) == 0
        with pytest.raises(ValueError):
            MetricSense.LOWER_IS_BETTER.best_index([])

    def test_worst_sentinel(self):
        assert MetricSense.LOWER_IS_BETTER.worst == np.inf
        assert MetricSense.HIGHER_IS_BETTER.worst == -np.inf


class TestDSEProblem:
    def test_default_cost_weights(self):
        p = make_problem()
        assert p.cost([2, 2, 2]) == 6.0

    def test_custom_cost_weights(self):
        p = make_problem(cost_weights=np.array([1.0, 2.0, 3.0]))
        assert p.cost([2, 2, 2]) == 12.0

    def test_cost_weight_validation(self):
        with pytest.raises(ValueError, match="shape"):
            make_problem(cost_weights=np.ones(4))
        with pytest.raises(ValueError, match="non-negative"):
            make_problem(cost_weights=np.array([1.0, -1.0, 1.0]))

    def test_bounds_validation(self):
        with pytest.raises(ValueError, match="min_value"):
            make_problem(min_value=16, max_value=16)

    def test_configuration_validation(self):
        p = make_problem()
        with pytest.raises(ValueError, match="components"):
            p.validate_configuration([4, 4])
        with pytest.raises(ValueError, match="outside bounds"):
            p.validate_configuration([4, 4, 17])
        with pytest.raises(ValueError, match="outside bounds"):
            p.validate_configuration([1, 4, 4])

    def test_satisfied_uses_sense(self):
        p = make_problem(threshold=-30.0)
        assert p.satisfied(-40.0)
        assert not p.satisfied(-20.0)

    def test_full_configuration(self):
        p = make_problem()
        np.testing.assert_array_equal(p.full_configuration(16), [16, 16, 16])
        with pytest.raises(ValueError):
            p.full_configuration(17)
