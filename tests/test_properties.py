"""Property-based tests (hypothesis) on the core invariants.

These complement the example-based suites with randomized checks of the
mathematical properties the method rests on: kriging exactness and
equivariances, policy-coverage monotonicity and cache/bookkeeping
consistency.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.estimator import KrigingEstimator
from repro.core.kriging import ordinary_kriging
from repro.core.models import GaussianVariogram, LinearVariogram, PowerVariogram
from repro.core.universal import universal_kriging
from repro.experiments.replay import replay_trajectory

configs2d = st.lists(
    st.tuples(st.integers(0, 9), st.integers(0, 9)),
    min_size=3,
    max_size=18,
    unique=True,
)

MODELS = [
    LinearVariogram(1.0),
    GaussianVariogram(sill=5.0, range_=6.0),
    PowerVariogram(scale=0.7, exponent=1.3),
]


class TestKrigingInvariants:
    @settings(deadline=None, max_examples=30)
    @given(configs2d, st.data())
    def test_exactness_everywhere(self, points, data):
        pts = np.asarray(points, dtype=float)
        rng = np.random.default_rng(42)
        vals = rng.normal(size=pts.shape[0])
        index = data.draw(st.integers(0, pts.shape[0] - 1))
        for model in MODELS:
            res = ordinary_kriging(pts, vals, pts[index], model)
            assert res.estimate == pytest.approx(vals[index], abs=1e-8)
            assert res.variance == pytest.approx(0.0, abs=1e-8)

    @settings(deadline=None, max_examples=30)
    @given(configs2d, st.floats(-50.0, 50.0))
    def test_shift_equivariance_all_models(self, points, shift):
        pts = np.asarray(points, dtype=float)
        rng = np.random.default_rng(7)
        vals = rng.normal(size=pts.shape[0])
        query = np.array([4.5, 4.5])
        for model in MODELS:
            base = ordinary_kriging(pts, vals, query, model).estimate
            moved = ordinary_kriging(pts, vals + shift, query, model).estimate
            assert moved == pytest.approx(base + shift, abs=1e-6)

    @settings(deadline=None, max_examples=20)
    @given(configs2d)
    def test_estimate_within_hull_of_values_for_positive_weights(self, points):
        """When all weights are non-negative the estimate is a convex
        combination, hence bounded by the support values."""
        pts = np.asarray(points, dtype=float)
        rng = np.random.default_rng(3)
        vals = rng.normal(size=pts.shape[0])
        query = np.array([5.0, 5.0])
        res = ordinary_kriging(pts, vals, query, LinearVariogram(1.0))
        if np.all(res.weights >= -1e-9):
            assert vals.min() - 1e-6 <= res.estimate <= vals.max() + 1e-6

    @settings(deadline=None, max_examples=20)
    @given(configs2d)
    def test_universal_matches_ordinary_on_constant_field(self, points):
        pts = np.asarray(points, dtype=float)
        vals = np.full(pts.shape[0], 2.5)
        query = np.array([4.0, 4.0])
        model = PowerVariogram(scale=1.0, exponent=1.5)
        uk = universal_kriging(pts, vals, query, model)
        ok = ordinary_kriging(pts, vals, query, model)
        assert uk.estimate == pytest.approx(ok.estimate, abs=1e-6)
        assert uk.estimate == pytest.approx(2.5, abs=1e-6)


class TestPolicyInvariants:
    @settings(deadline=None, max_examples=15)
    @given(
        st.lists(
            st.tuples(st.integers(2, 10), st.integers(2, 10), st.integers(2, 10)),
            min_size=5,
            max_size=40,
        )
    )
    def test_bookkeeping_consistency(self, queries):
        est = KrigingEstimator(lambda c: float(np.sum(c)), 3, distance=3, nn_min=1)
        counts = []
        for q in queries:
            outcome = est.evaluate(q)
            if outcome.interpolated and not outcome.exact_hit:
                counts.append(outcome.n_neighbors)
        s = est.stats
        assert s.n_queries == len(queries)
        assert len(est.cache) == s.n_simulated
        # The streaming sketch must agree with the exact distribution on
        # everything it tracks exactly: count, sum, extremes.
        assert s.neighbor_sketch.count == s.n_interpolated == len(counts)
        assert s.neighbor_count_sum == sum(counts) == s.neighbor_sketch.sum
        if counts:
            assert s.neighbor_sketch.min == min(counts)
            assert s.neighbor_sketch.max == max(counts)
            assert min(counts) <= s.neighbor_quantile(0.5) <= max(counts)

    @settings(deadline=None, max_examples=10)
    @given(
        st.lists(
            st.tuples(st.integers(2, 10), st.integers(2, 10)),
            min_size=4,
            max_size=25,
            unique=True,
        )
    )
    def test_replay_coverage_monotone_in_distance(self, configurations):
        configs = np.asarray(configurations, dtype=np.int64)
        values = configs.astype(float) @ np.array([-3.0, -2.0])
        coverage = [
            replay_trajectory(configs, values, distance=d, variogram="linear").p_percent
            for d in (0, 1, 2, 4, 8)
        ]
        assert all(a <= b + 1e-9 for a, b in zip(coverage, coverage[1:]))

    @settings(deadline=None, max_examples=10)
    @given(
        st.lists(
            st.tuples(st.integers(2, 10), st.integers(2, 10)),
            min_size=4,
            max_size=25,
            unique=True,
        ),
        st.integers(0, 3),
    )
    def test_replay_counts_partition(self, configurations, nn_min):
        configs = np.asarray(configurations, dtype=np.int64)
        values = np.arange(configs.shape[0], dtype=float)
        stats = replay_trajectory(
            configs, values, distance=3, nn_min=nn_min, variogram="linear"
        )
        assert stats.n_simulated + stats.n_interpolated == stats.n_configs
        assert stats.errors.size == stats.n_interpolated

    @settings(deadline=None, max_examples=10)
    @given(
        st.lists(
            st.tuples(st.integers(2, 10), st.integers(2, 10)),
            min_size=4,
            max_size=20,
            unique=True,
        )
    )
    def test_replay_nn_min_monotone(self, configurations):
        configs = np.asarray(configurations, dtype=np.int64)
        values = np.arange(configs.shape[0], dtype=float)
        p = [
            replay_trajectory(
                configs, values, distance=3, nn_min=nn, variogram="linear"
            ).p_percent
            for nn in (0, 1, 2, 4)
        ]
        assert all(a >= b - 1e-9 for a, b in zip(p, p[1:]))


class TestLowRankInvariants:
    """The factor-reuse layer's algebra: edited Cholesky factors must always
    agree with refactorizing the edited matrix, and factored kriging solves
    must match the plain solver wherever the factor path engages."""

    spd_dims = st.integers(2, 24)

    @settings(deadline=None, max_examples=25)
    @given(spd_dims, st.integers(0, 2**31 - 1))
    def test_update_downdate_roundtrip(self, n, seed):
        from repro.core.lowrank import choldowndate, cholupdate

        rng = np.random.default_rng(seed)
        m = rng.normal(size=(n, n))
        matrix = m @ m.T + n * np.eye(n)
        chol = np.linalg.cholesky(matrix)
        x = rng.normal(size=n)
        updated = cholupdate(chol, x)
        np.testing.assert_allclose(
            updated @ updated.T, matrix + np.outer(x, x), rtol=1e-8, atol=1e-8
        )
        back = choldowndate(updated, x)
        np.testing.assert_allclose(back, chol, rtol=1e-6, atol=1e-7)

    @settings(deadline=None, max_examples=25)
    @given(spd_dims, st.integers(0, 3), st.integers(0, 2**31 - 1))
    def test_delete_matches_refactorization(self, n, index, seed):
        from repro.core.lowrank import chol_delete

        index = index % n
        rng = np.random.default_rng(seed)
        m = rng.normal(size=(n, n))
        matrix = m @ m.T + n * np.eye(n)
        shrunk = chol_delete(np.linalg.cholesky(matrix), index)
        keep = [i for i in range(n) if i != index]
        np.testing.assert_allclose(
            shrunk,
            np.linalg.cholesky(matrix[np.ix_(keep, keep)]),
            rtol=1e-7,
            atol=1e-7,
        )

    @settings(deadline=None, max_examples=15)
    @given(st.integers(0, 2**31 - 1), st.integers(6, 20))
    def test_factored_estimates_match_plain_batch(self, seed, n_support):
        """Derived factors (the cache walks from a base signature by rank-1
        edits) must reproduce the plain grouped solve on continuous clouds,
        where the shifted Gamma matrix is strictly PD."""
        from repro.core.distances import cross_distances
        from repro.core.factor_cache import FactorCache
        from repro.core.kriging import ordinary_kriging_batch
        from repro.core.models import ExponentialVariogram

        rng = np.random.default_rng(seed)
        variogram = ExponentialVariogram(sill=10.0, range_=6.0)
        points = rng.uniform(0.0, 9.0, size=(n_support + 4, 3))
        values = rng.normal(size=n_support + 4)
        queries = rng.uniform(1.0, 8.0, size=(3, 3))

        cache = FactorCache(min_support=2)
        base = tuple(range(n_support))
        cache.factor_for(base, points, variogram, "l1")
        derived = tuple(sorted(set(base) - {1} | {n_support, n_support + 1}))
        factor = cache.factor_for(derived, points, variogram, "l1")
        if factor is None:
            return  # ill-conditioned draw: the reuse layer refused, by design
        support = factor.rows
        with_factor = ordinary_kriging_batch(
            points[support], values[support], queries, variogram, factor=factor
        )
        plain = ordinary_kriging_batch(
            points[support], values[support], queries, variogram
        )
        for reused, reference in zip(with_factor, plain):
            assert reused.estimate == pytest.approx(
                reference.estimate, rel=1e-9, abs=1e-9
            )
            assert reused.variance == pytest.approx(
                reference.variance, rel=1e-6, abs=1e-8
            )
