"""Sanity checks on the public API surface and package metadata."""

import importlib

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.core",
    "repro.fixedpoint",
    "repro.signal",
    "repro.video",
    "repro.neural",
    "repro.optimization",
    "repro.baselines",
    "repro.experiments",
    "repro.utils",
    "repro.cli",
]


class TestImports:
    @pytest.mark.parametrize("name", PACKAGES)
    def test_importable(self, name):
        module = importlib.import_module(name)
        assert module is not None

    @pytest.mark.parametrize("name", PACKAGES)
    def test_all_entries_resolve(self, name):
        module = importlib.import_module(name)
        for symbol in getattr(module, "__all__", []):
            assert hasattr(module, symbol), f"{name}.{symbol} missing"

    def test_version(self):
        assert repro.__version__ == "1.0.0"


class TestTopLevelAPI:
    def test_core_objects_exposed(self):
        assert callable(repro.ordinary_kriging)
        assert callable(repro.simple_kriging)
        assert callable(repro.empirical_semivariogram)

    def test_estimator_exposed(self):
        est = repro.KrigingEstimator(lambda c: 0.0, 2)
        outcome = est.evaluate([4, 4])
        assert isinstance(outcome, repro.EstimationOutcome)

    def test_problem_types_exposed(self):
        problem = repro.DSEProblem(
            name="t",
            num_variables=2,
            min_value=1,
            max_value=8,
            simulate=lambda w: 0.0,
            sense=repro.MetricSense.LOWER_IS_BETTER,
            threshold=1.0,
        )
        assert repro.MinPlusOneOptimizer(problem) is not None
        assert repro.NoiseBudgetingDescent(problem) is not None


class TestDocstrings:
    @pytest.mark.parametrize("name", PACKAGES)
    def test_every_package_documented(self, name):
        module = importlib.import_module(name)
        assert module.__doc__ and len(module.__doc__.strip()) > 20

    def test_public_symbols_documented(self):
        undocumented = []
        for name in PACKAGES:
            module = importlib.import_module(name)
            for symbol in getattr(module, "__all__", []):
                obj = getattr(module, symbol)
                if callable(obj) and not (getattr(obj, "__doc__", None) or "").strip():
                    undocumented.append(f"{name}.{symbol}")
        assert not undocumented, f"undocumented public symbols: {undocumented}"
