"""Unit tests for repro.fixedpoint.qformat."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fixedpoint.qformat import QFormat


class TestConstruction:
    def test_word_length_signed(self):
        fmt = QFormat(integer_bits=0, frac_bits=7)
        assert fmt.word_length == 8

    def test_word_length_unsigned(self):
        fmt = QFormat(integer_bits=0, frac_bits=8, signed=False)
        assert fmt.word_length == 8

    def test_negative_integer_bits_allowed(self):
        fmt = QFormat(integer_bits=-2, frac_bits=10)
        assert fmt.word_length == 9
        assert fmt.max_value < 0.25

    def test_zero_word_length_rejected(self):
        with pytest.raises(ValueError, match="word length"):
            QFormat(integer_bits=0, frac_bits=-1)

    def test_non_integer_bits_rejected(self):
        with pytest.raises(TypeError):
            QFormat(integer_bits=0.5, frac_bits=7)  # type: ignore[arg-type]
        with pytest.raises(TypeError):
            QFormat(integer_bits=0, frac_bits=7.0)  # type: ignore[arg-type]


class TestRange:
    def test_step(self):
        assert QFormat(0, 3).step == 0.125

    def test_signed_bounds(self):
        fmt = QFormat(integer_bits=1, frac_bits=2)
        assert fmt.min_value == -2.0
        assert fmt.max_value == 2.0 - 0.25

    def test_unsigned_bounds(self):
        fmt = QFormat(integer_bits=1, frac_bits=2, signed=False)
        assert fmt.min_value == 0.0
        assert fmt.max_value == 2.0 - 0.25

    def test_levels(self):
        assert QFormat(0, 7).levels == 256

    def test_contains(self):
        fmt = QFormat(0, 7)
        assert fmt.contains(0.5)
        assert fmt.contains(fmt.max_value)
        assert not fmt.contains(1.0)
        assert fmt.contains(-1.0)
        assert not fmt.contains(-1.01)


class TestWithWordLength:
    def test_preserves_integer_part(self):
        fmt = QFormat(integer_bits=2, frac_bits=5)
        wide = fmt.with_word_length(16)
        assert wide.integer_bits == 2
        assert wide.word_length == 16
        assert wide.frac_bits == 13

    def test_rejects_non_integer(self):
        with pytest.raises(TypeError):
            QFormat(0, 7).with_word_length(8.0)  # type: ignore[arg-type]

    def test_too_small_word_length_rejected(self):
        with pytest.raises(ValueError):
            QFormat(integer_bits=4, frac_bits=4).with_word_length(0)

    def test_negative_frac_bits_allowed_when_word_positive(self):
        # Shrinking below the integer part trades integer resolution: Q4.-2
        # is a valid 3-bit format with step 4.
        fmt = QFormat(integer_bits=4, frac_bits=4).with_word_length(3)
        assert fmt.frac_bits == -2
        assert fmt.step == 4.0

    @given(st.integers(min_value=1, max_value=40))
    def test_word_length_roundtrip(self, w):
        fmt = QFormat(integer_bits=0, frac_bits=4).with_word_length(w)
        assert fmt.word_length == w


class TestStr:
    def test_signed_str(self):
        assert str(QFormat(1, 6)) == "Q1.6"

    def test_unsigned_str(self):
        assert str(QFormat(1, 7, signed=False)) == "UQ1.7"
