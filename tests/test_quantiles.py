"""Unit tests for repro.utils.quantiles (the P² streaming sketch)."""

import numpy as np
import pytest

from repro.utils.quantiles import DEFAULT_PROBS, P2Quantile, QuantileSketch


class TestP2Quantile:
    def test_empty_is_nan(self):
        assert np.isnan(P2Quantile(0.5).value)

    def test_exact_below_five_observations(self):
        est = P2Quantile(0.5)
        for x in (3.0, 1.0, 2.0):
            est.update(x)
        assert est.value == pytest.approx(2.0)
        assert est.n == 3

    def test_median_of_uniform_stream(self):
        rng = np.random.default_rng(0)
        est = P2Quantile(0.5)
        data = rng.uniform(0.0, 1.0, size=5000)
        for x in data:
            est.update(x)
        assert est.value == pytest.approx(np.quantile(data, 0.5), abs=0.02)

    @pytest.mark.parametrize("prob", [0.1, 0.25, 0.5, 0.75, 0.9])
    def test_tracks_normal_stream(self, prob):
        rng = np.random.default_rng(7)
        data = rng.normal(10.0, 3.0, size=8000)
        est = P2Quantile(prob)
        for x in data:
            est.update(x)
        truth = float(np.quantile(data, prob))
        # P² is approximate; a tenth of a standard deviation is plenty here.
        assert est.value == pytest.approx(truth, abs=0.3)

    def test_integer_ties(self):
        """Neighbour counts are small ints with heavy ties — stay sane."""
        est = P2Quantile(0.5)
        for x in [2, 3, 3, 3, 4, 3, 3, 2, 3, 5, 3, 3] * 20:
            est.update(x)
        assert 2.0 <= est.value <= 4.0

    def test_rejects_bad_prob_and_nan(self):
        with pytest.raises(ValueError, match="prob"):
            P2Quantile(1.0)
        est = P2Quantile(0.5)
        with pytest.raises(ValueError, match="NaN"):
            est.update(float("nan"))


class TestQuantileSketch:
    def test_exact_side_statistics(self):
        sketch = QuantileSketch()
        data = [5.0, -1.0, 2.0, 2.0, 10.0, 0.0]
        for x in data:
            sketch.update(x)
        assert sketch.count == len(data)
        assert sketch.min == -1.0
        assert sketch.max == 10.0
        assert sketch.sum == pytest.approx(sum(data))
        assert sketch.mean == pytest.approx(np.mean(data))

    def test_empty_sketch(self):
        sketch = QuantileSketch()
        assert sketch.count == 0
        assert np.isnan(sketch.mean)
        assert np.isnan(sketch.min)
        assert np.isnan(sketch.quantile(0.5))

    def test_tracked_quantiles(self):
        rng = np.random.default_rng(3)
        data = rng.exponential(4.0, size=6000)
        sketch = QuantileSketch()
        for x in data:
            sketch.update(x)
        for prob in DEFAULT_PROBS:
            truth = float(np.quantile(data, prob))
            assert sketch.quantile(prob) == pytest.approx(truth, rel=0.1, abs=0.2)

    def test_untracked_quantile_rejected(self):
        sketch = QuantileSketch((0.5,))
        sketch.update(1.0)
        with pytest.raises(KeyError, match="not tracked"):
            sketch.quantile(0.99)

    def test_summary_keys(self):
        sketch = QuantileSketch((0.5, 0.9))
        for x in range(100):
            sketch.update(float(x))
        summary = sketch.summary()
        assert set(summary) == {"count", "mean", "min", "max", "p50", "p90"}
        assert summary["count"] == 100.0
        assert summary["p50"] == pytest.approx(49.5, abs=2.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            QuantileSketch(())
        with pytest.raises(ValueError, match="duplicate"):
            QuantileSketch((0.5, 0.5))
