"""Unit tests for repro.fixedpoint.quantize."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fixedpoint.qformat import QFormat
from repro.fixedpoint.quantize import Overflow, Rounding, quantize

FMT = QFormat(integer_bits=0, frac_bits=3)  # step 0.125, range [-1, 0.875]


class TestRounding:
    def test_nearest_rounds_to_closest(self):
        assert quantize(0.30, FMT) == pytest.approx(0.250)
        assert quantize(0.32, FMT) == pytest.approx(0.375)

    def test_nearest_ties_away_from_zero(self):
        fmt = QFormat(0, 1)  # step 0.5
        assert quantize(0.25, fmt, rounding=Rounding.NEAREST) == pytest.approx(0.5)
        assert quantize(-0.25, fmt, rounding=Rounding.NEAREST) == pytest.approx(-0.5)

    def test_truncate_rounds_down(self):
        assert quantize(0.37, FMT, rounding=Rounding.TRUNCATE) == pytest.approx(0.250)
        assert quantize(-0.37, FMT, rounding=Rounding.TRUNCATE) == pytest.approx(-0.375)

    def test_convergent_ties_to_even(self):
        fmt = QFormat(0, 1)  # step 0.5; codes ..., -1, -0.5, 0, 0.5, ...
        assert quantize(0.25, fmt, rounding=Rounding.CONVERGENT) == pytest.approx(0.0)
        assert quantize(0.75, fmt, rounding=Rounding.CONVERGENT) == pytest.approx(1.0 - 0.5)

    def test_exact_values_unchanged(self):
        values = np.array([-1.0, -0.125, 0.0, 0.5, 0.875])
        for mode in Rounding:
            np.testing.assert_allclose(quantize(values, FMT, rounding=mode), values)


class TestOverflow:
    def test_saturate_clamps_high(self):
        assert quantize(3.0, FMT) == pytest.approx(FMT.max_value)

    def test_saturate_clamps_low(self):
        assert quantize(-3.0, FMT) == pytest.approx(FMT.min_value)

    def test_wrap_wraps(self):
        # 1.0 is one step above max (0.875): wraps to min.
        assert quantize(1.0, FMT, overflow=Overflow.WRAP) == pytest.approx(-1.0)

    def test_wrap_identity_in_range(self):
        values = np.linspace(-1.0, 0.875, 16)
        np.testing.assert_allclose(
            quantize(values, FMT, overflow=Overflow.WRAP), values
        )


class TestValidation:
    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="non-finite"):
            quantize(np.array([0.1, np.nan]), FMT)

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="non-finite"):
            quantize(np.inf, FMT)

    def test_shape_preserved(self):
        x = np.zeros((3, 4, 5))
        assert quantize(x, FMT).shape == (3, 4, 5)


class TestProperties:
    @given(
        st.floats(min_value=-1.0, max_value=1.0),
        st.integers(min_value=1, max_value=20),
    )
    def test_quantization_error_bounded_by_step_in_range(self, scale, frac_bits):
        fmt = QFormat(integer_bits=0, frac_bits=frac_bits)
        # Stay inside the representable range: saturation errors are larger.
        value = scale * fmt.max_value if scale >= 0 else -scale * fmt.min_value
        q = float(quantize(value, fmt))
        assert abs(q - value) <= fmt.step / 2 + 1e-12

    @given(
        st.floats(min_value=-0.999, max_value=0.999),
        st.integers(min_value=1, max_value=20),
    )
    def test_truncation_error_one_sided(self, value, frac_bits):
        fmt = QFormat(integer_bits=0, frac_bits=frac_bits)
        q = float(quantize(value, fmt, rounding=Rounding.TRUNCATE))
        assert value - fmt.step - 1e-12 < q <= value + 1e-12

    @given(
        st.lists(st.floats(min_value=-0.9, max_value=0.9), min_size=1, max_size=30),
    )
    def test_idempotent(self, values):
        x = np.asarray(values)
        once = quantize(x, FMT)
        twice = quantize(once, FMT)
        np.testing.assert_array_equal(once, twice)

    @given(
        st.floats(min_value=-0.9, max_value=0.9),
        st.integers(min_value=2, max_value=18),
    )
    def test_result_on_grid(self, value, frac_bits):
        fmt = QFormat(integer_bits=0, frac_bits=frac_bits)
        q = float(quantize(value, fmt))
        code = q / fmt.step
        assert code == pytest.approx(round(code), abs=1e-9)

    @given(st.floats(min_value=-0.9, max_value=0.9))
    def test_monotone_nondecreasing(self, value):
        lower = float(quantize(value - 0.2, FMT))
        upper = float(quantize(value + 0.2, FMT))
        assert lower <= upper
