"""Unit tests for the record-then-replay methodology (repro.experiments.replay)."""

import numpy as np
import pytest

from repro.experiments.replay import MetricKind, ReplayStats, replay_trace, replay_trajectory
from repro.optimization.trace import EvaluationRecord, OptimizationTrace


def line_trajectory(n=12):
    """1-D walk with a linear dB surface."""
    configs = np.stack([np.arange(n, 0, -1), np.full(n, 16)], axis=1)
    values = -6.0 * configs[:, 0].astype(float)
    return configs, values


class TestMetricKind:
    def test_noise_power_error_in_bits(self):
        err = MetricKind.NOISE_POWER_DB.error(-60.0, -66.02)
        assert err == pytest.approx(1.0, abs=1e-3)

    def test_rate_error_relative(self):
        assert MetricKind.RATE.error(0.95, 1.0) == pytest.approx(0.05)


class TestReplayMechanics:
    def test_first_config_always_simulated(self):
        configs, values = line_trajectory()
        stats = replay_trajectory(configs, values, distance=3)
        assert stats.n_simulated >= 1
        assert stats.n_configs == len(configs)

    def test_zero_distance_simulates_everything(self):
        configs, values = line_trajectory()
        stats = replay_trajectory(configs, values, distance=0)
        assert stats.n_simulated == len(configs)
        assert stats.n_interpolated == 0
        assert stats.p_percent == 0.0

    def test_p_percent_monotone_in_distance(self):
        configs, values = line_trajectory(20)
        p = [
            replay_trajectory(configs, values, distance=d).p_percent
            for d in (1, 2, 4, 8)
        ]
        assert all(a <= b + 1e-9 for a, b in zip(p, p[1:]))

    def test_duplicates_deduplicated(self):
        configs, values = line_trajectory(6)
        doubled = np.vstack([configs, configs])
        stats = replay_trajectory(doubled, np.concatenate([values, values]), distance=2)
        assert stats.n_configs == 6

    def test_errors_only_for_interpolated(self):
        configs, values = line_trajectory()
        stats = replay_trajectory(configs, values, distance=3)
        assert stats.errors.size == stats.n_interpolated

    def test_counts_add_up(self):
        configs, values = line_trajectory()
        stats = replay_trajectory(configs, values, distance=4)
        assert stats.n_simulated + stats.n_interpolated == stats.n_configs

    def test_nn_min_2_reduces_interpolations(self):
        """The paper's Nn_min ablation: fewer interpolations at Nn_min = 2."""
        configs, values = line_trajectory(20)
        loose = replay_trajectory(configs, values, distance=3, nn_min=1)
        strict = replay_trajectory(configs, values, distance=3, nn_min=2)
        assert strict.n_interpolated <= loose.n_interpolated

    def test_rate_metric_uses_relative_errors(self):
        configs = np.stack([np.arange(10, 0, -1), np.full(10, 8)], axis=1)
        values = 0.5 + 0.05 * configs[:, 0].astype(float)
        stats = replay_trajectory(
            configs, values, distance=3, metric_kind=MetricKind.RATE
        )
        assert np.all(stats.errors < 1.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="non-empty"):
            replay_trajectory(np.empty((0, 2)), np.empty(0))
        with pytest.raises(ValueError, match="incompatible"):
            replay_trajectory(np.zeros((3, 2), dtype=int), np.zeros(4))


class TestReplayStats:
    def test_properties_empty_errors(self):
        stats = ReplayStats(
            benchmark="x",
            metric_kind=MetricKind.NOISE_POWER_DB,
            distance=2.0,
            nn_min=1,
            n_configs=4,
            n_interpolated=0,
            n_simulated=4,
            mean_neighbors=float("nan"),
            errors=np.empty(0),
        )
        assert stats.p_percent == 0.0
        assert np.isnan(stats.max_error)
        assert np.isnan(stats.mean_error)

    def test_p_percent(self):
        stats = ReplayStats(
            benchmark="x",
            metric_kind=MetricKind.NOISE_POWER_DB,
            distance=2.0,
            nn_min=1,
            n_configs=10,
            n_interpolated=4,
            n_simulated=6,
            mean_neighbors=2.0,
            errors=np.array([0.1, 0.2, 0.3, 0.4]),
        )
        assert stats.p_percent == 40.0
        assert stats.max_error == pytest.approx(0.4)
        assert stats.mean_error == pytest.approx(0.25)


class TestReplayTrace:
    def test_trace_wrapper_dedups(self):
        trace = OptimizationTrace()
        for w, v in [((4, 4), -40.0), ((5, 4), -46.0), ((4, 4), -40.0), ((4, 5), -43.0)]:
            trace.append(EvaluationRecord(w, v, simulated=True))
        stats = replay_trace(trace, distance=3)
        assert stats.n_configs == 3

    def test_interpolation_accuracy_on_smooth_surface(self):
        # Two-sided dense line: interpolations should be near-exact.
        n = 30
        configs = np.stack([np.arange(n), np.zeros(n, dtype=int)], axis=1)
        order = np.argsort((np.arange(n) * 7) % n)  # scrambled visit order
        values = -3.0 * configs[:, 0].astype(float) - 10.0
        stats = replay_trajectory(
            configs[order], values[order], distance=4, variogram="linear"
        )
        assert stats.n_interpolated > 0
        assert stats.mean_error < 0.6
