"""Unit tests for repro.experiments.reporting and small experiment helpers."""

import numpy as np
import pytest

from repro.experiments.figure1 import surface_is_monotone
from repro.experiments.replay import MetricKind, ReplayStats, replay_trajectory
from repro.experiments.reporting import (
    format_factor_reuse,
    format_neighbor_distribution,
    format_row,
    format_table1,
)
from repro.experiments.table1 import Table1Row
from repro.experiments.timing import SpeedupProjection


def make_row(**overrides):
    defaults = dict(
        benchmark="fft",
        metric_label="Noise Power",
        nv=10,
        distance=3.0,
        p_percent=78.31,
        mean_neighbors=2.12,
        max_error=2.35,
        mean_error=0.26,
        n_configs=272,
        metric_kind=MetricKind.NOISE_POWER_DB,
    )
    defaults.update(overrides)
    return Table1Row(**defaults)


class TestFormatRow:
    def test_noise_power_row(self):
        text = format_row(make_row())
        assert "fft" in text
        assert "78.31" in text
        assert "0.26" in text

    def test_rate_row_percent_format(self):
        row = make_row(
            benchmark="squeezenet",
            metric_label="Classification rate",
            metric_kind=MetricKind.RATE,
            max_error=0.0619,
            mean_error=0.0146,
        )
        text = format_row(row)
        assert "6.19%" in text
        assert "1.46%" in text

    def test_nan_errors_render_dash(self):
        row = make_row(max_error=float("nan"), mean_error=float("nan"))
        text = format_row(row)
        assert text.count("-") >= 2


class TestFormatTable:
    def test_header_and_grouping(self):
        rows = [
            make_row(distance=2.0),
            make_row(distance=3.0),
            make_row(benchmark="iir", nv=5, distance=2.0),
        ]
        text = format_table1(rows)
        lines = text.splitlines()
        assert "p(%)" in lines[0]
        assert "" in lines  # blank separator between benchmarks

    def test_empty_table(self):
        text = format_table1([])
        assert "p(%)" in text


class TestSurfaceMonotone:
    def test_monotone_surface(self):
        surface = -np.add.outer(np.arange(5), np.arange(5)).astype(float)
        assert surface_is_monotone(surface)

    def test_non_monotone_surface(self):
        surface = -np.add.outer(np.arange(5), np.arange(5)).astype(float)
        surface[2, 2] = 10.0
        assert not surface_is_monotone(surface)

    def test_tolerance_absorbs_ripple(self):
        surface = -np.add.outer(np.arange(5), np.arange(5)).astype(float)
        surface[2, 2] += 0.5
        assert surface_is_monotone(surface, tolerance_db=1.0)


class TestNeighborDistribution:
    def _stats(self, **overrides):
        defaults = dict(
            benchmark="fir",
            metric_kind=MetricKind.NOISE_POWER_DB,
            distance=3.0,
            nn_min=1,
            n_configs=40,
            n_interpolated=25,
            n_simulated=15,
            mean_neighbors=2.4,
            errors=np.zeros(25),
            neighbor_quantiles=((0.25, 2.0), (0.5, 2.0), (0.9, 4.0)),
        )
        defaults.update(overrides)
        return ReplayStats(**defaults)

    def test_renders_quantiles_from_sketch(self):
        line = format_neighbor_distribution(self._stats())
        assert "fir" in line
        assert "j_mean= 2.40" in line
        assert "p25= 2.00" in line and "p90= 4.00" in line

    def test_no_interpolations_placeholder(self):
        stats = self._stats(
            n_interpolated=0, errors=np.zeros(0), neighbor_quantiles=()
        )
        assert "no interpolations" in format_neighbor_distribution(stats)

    def test_replay_fills_quantiles(self):
        """End to end: the replay's sketch feeds the distribution renderer."""
        rng = np.random.default_rng(2)
        configs = rng.integers(2, 8, size=(60, 2))
        configs = np.unique(configs, axis=0)
        values = configs.astype(float) @ np.array([-2.0, -1.0])
        stats = replay_trajectory(configs, values, distance=4, variogram="linear")
        assert stats.n_interpolated > 0
        assert stats.neighbor_quantiles
        assert stats.neighbor_quantile(0.5) >= 1.0
        assert np.isnan(stats.neighbor_quantile(0.123))
        line = format_neighbor_distribution(stats)
        assert "p50=" in line


class TestSpeedupEdgeCases:
    def test_full_interpolation_infinite_ideal(self):
        proj = SpeedupProjection(
            benchmark="x", p_fraction=1.0, t_simulation=1.0, t_kriging=0.0
        )
        assert proj.ideal_speedup == float("inf")
        assert proj.speedup == float("inf")

    def test_no_interpolation_no_speedup(self):
        proj = SpeedupProjection(
            benchmark="x", p_fraction=0.0, t_simulation=1.0, t_kriging=1e-6
        )
        assert proj.speedup == pytest.approx(1.0)


class TestFactorReuse:
    def _stats(self, **overrides):
        defaults = dict(
            benchmark="fir",
            metric_kind=MetricKind.NOISE_POWER_DB,
            distance=3.0,
            nn_min=1,
            n_configs=40,
            n_interpolated=25,
            n_simulated=15,
            mean_neighbors=2.4,
            errors=np.zeros(25),
            factor_reuse=(
                ("hits", 6),
                ("updates", 10),
                ("update_points", 14),
                ("fresh", 4),
                ("fallbacks", 1),
                ("failures", 0),
                ("invalidations", 2),
                ("evictions", 0),
            ),
        )
        defaults.update(overrides)
        return ReplayStats(**defaults)

    def test_renders_counters_and_rate(self):
        line = format_factor_reuse(self._stats())
        assert "hits=6" in line
        assert "updates=10" in line
        assert "fresh=4" in line
        assert "fallbacks=1" in line
        assert "80.0%" in line  # (6 + 10) / 20 requests

    def test_no_requests_placeholder(self):
        stats = self._stats(factor_reuse=())
        assert np.isnan(stats.factor_reuse_rate)
        assert "n/a" in format_factor_reuse(stats)

    def test_replay_surfaces_reuse_counters(self):
        """End to end: the estimator's factor counters reach ReplayStats."""
        rng = np.random.default_rng(4)
        configs = np.unique(rng.integers(2, 8, size=(60, 2)), axis=0)
        values = configs.astype(float) @ np.array([-2.0, -1.0])
        stats = replay_trajectory(
            configs, values, distance=4, variogram="exponential"
        )
        assert stats.factor_reuse  # counters recorded (possibly all zero)
        assert stats.factor_counter("hits") >= 0
        disabled = replay_trajectory(
            configs, values, distance=4, variogram="exponential",
            factor_cache=False,
        )
        assert disabled.factor_counter("hits") == 0
        np.testing.assert_allclose(
            stats.errors, disabled.errors, rtol=1e-9, atol=1e-12
        )


class TestSolvePhases:
    def _stats(self, **overrides):
        defaults = dict(
            benchmark="fir",
            metric_kind=MetricKind.NOISE_POWER_DB,
            distance=3.0,
            nn_min=1,
            n_configs=40,
            n_interpolated=25,
            n_simulated=15,
            mean_neighbors=2.4,
            errors=np.zeros(25),
            solve_phases=(
                ("assembly_seconds", 0.6),
                ("factorize_seconds", 0.3),
                ("backsolve_seconds", 0.1),
                ("n_flushes", 12.0),
            ),
        )
        defaults.update(overrides)
        return ReplayStats(**defaults)

    def test_renders_split_with_shares(self):
        from repro.experiments.reporting import format_solve_phases

        line = format_solve_phases(self._stats())
        assert "assembly=0.600s" in line
        assert "60.0%" in line
        assert "factorize=0.300s" in line
        assert "backsolve=0.100s" in line
        assert "flushes=12" in line

    def test_no_flushes_placeholder(self):
        from repro.experiments.reporting import format_solve_phases

        assert "n/a" in format_solve_phases(self._stats(solve_phases=()))

    def test_accessor_defaults_to_zero(self):
        stats = self._stats()
        assert stats.solve_phase("assembly_seconds") == pytest.approx(0.6)
        assert stats.solve_phase("no_such_phase") == 0.0

    def test_replay_surfaces_solve_phase_split(self):
        """End to end: the estimator's per-flush phase split reaches
        ReplayStats whenever the replay interpolates anything."""
        rng = np.random.default_rng(6)
        configs = np.unique(rng.integers(2, 8, size=(60, 2)), axis=0)
        values = configs.astype(float) @ np.array([-2.0, -1.0])
        stats = replay_trajectory(
            configs, values, distance=4, variogram="exponential"
        )
        assert stats.n_interpolated > 0
        phases = dict(stats.solve_phases)
        assert phases["n_flushes"] >= 1.0
        assert (
            phases["assembly_seconds"]
            + phases["factorize_seconds"]
            + phases["backsolve_seconds"]
        ) > 0.0
