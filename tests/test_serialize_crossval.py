"""Unit tests for trace serialization and leave-one-out cross-validation."""

import json

import numpy as np
import pytest

from repro.core.crossval import loo_cross_validate, select_variogram_loo
from repro.core.models import GaussianVariogram, LinearVariogram
from repro.optimization.serialize import (
    load_trace,
    save_trace,
    trace_from_dict,
    trace_to_dict,
)
from repro.optimization.trace import EvaluationRecord, OptimizationTrace


def sample_trace():
    trace = OptimizationTrace()
    trace.append(EvaluationRecord((16, 16), -80.5, simulated=True, phase="min"))
    trace.append(
        EvaluationRecord((15, 16), -74.25, simulated=False, n_neighbors=2, phase="min")
    )
    trace.append(
        EvaluationRecord((16, 16), -80.5, simulated=False, exact_hit=True, phase="greedy")
    )
    trace.record_decision(1)
    return trace


class TestSerialization:
    def test_roundtrip_dict(self):
        trace = sample_trace()
        rebuilt = trace_from_dict(trace_to_dict(trace))
        assert rebuilt.decisions == trace.decisions
        assert len(rebuilt) == len(trace)
        for a, b in zip(rebuilt.records, trace.records):
            assert a == b

    def test_roundtrip_file(self, tmp_path):
        trace = sample_trace()
        path = save_trace(trace, tmp_path / "trace.json")
        rebuilt = load_trace(path)
        assert rebuilt.records == trace.records

    def test_file_is_plain_json(self, tmp_path):
        path = save_trace(sample_trace(), tmp_path / "t.json")
        data = json.loads(path.read_text())
        assert data["format_version"] == 1
        assert len(data["records"]) == 3

    def test_bad_payloads_rejected(self):
        with pytest.raises(ValueError, match="missing 'records'"):
            trace_from_dict({"decisions": []})
        with pytest.raises(ValueError, match="format version"):
            trace_from_dict({"format_version": 99, "records": []})

    def test_replay_from_loaded_trace(self, tmp_path, fir_setup):
        """Persisted trajectories reproduce identical replay statistics."""
        from repro.experiments.replay import replay_trace

        trace = fir_setup.record_trajectory()
        path = save_trace(trace, tmp_path / "fir.json")
        loaded = load_trace(path)
        a = replay_trace(trace, distance=3)
        b = replay_trace(loaded, distance=3)
        assert a.p_percent == b.p_percent
        np.testing.assert_allclose(a.errors, b.errors)


class TestCrossValidation:
    def _field(self, rng, n=25):
        pts = rng.integers(0, 10, size=(n, 2)).astype(float)
        pts = np.unique(pts, axis=0)
        vals = pts @ np.array([2.0, -1.0]) + rng.normal(0, 0.1, size=pts.shape[0])
        return pts, vals

    def test_residual_shapes(self, rng):
        pts, vals = self._field(rng)
        result = loo_cross_validate(pts, vals, LinearVariogram(1.0))
        assert result.n_points == pts.shape[0]
        assert result.variances.shape == result.residuals.shape

    def test_rmse_small_on_smooth_field(self, rng):
        pts, vals = self._field(rng)
        result = loo_cross_validate(pts, vals, LinearVariogram(1.0))
        assert result.rmse < 3.0

    def test_max_support_cap(self, rng):
        pts, vals = self._field(rng, n=40)
        capped = loo_cross_validate(pts, vals, LinearVariogram(1.0), max_support=5)
        assert np.all(np.isfinite(capped.residuals))

    def test_selection_returns_best_rmse(self, rng):
        pts, vals = self._field(rng)
        cap = 24
        best = select_variogram_loo(
            pts, vals, kinds=("linear", "gaussian"), max_support=cap
        )
        from repro.core.fitting import fit_variogram
        from repro.core.variogram import empirical_semivariogram

        emp = empirical_semivariogram(pts, vals)
        manual = loo_cross_validate(
            pts, vals, fit_variogram(emp, "linear").model, kind="linear",
            max_support=cap,
        )
        assert best.rmse <= manual.rmse + 1e-9

    def test_standardized_score_defined(self, rng):
        pts, vals = self._field(rng)
        result = loo_cross_validate(
            pts, vals, GaussianVariogram(sill=50.0, range_=10.0)
        )
        assert result.mean_standardized_square > 0.0

    def test_validation(self, rng):
        with pytest.raises(ValueError, match="at least 3"):
            loo_cross_validate(np.zeros((2, 2)), np.zeros(2), LinearVariogram(1.0))
        with pytest.raises(ValueError, match="non-empty"):
            select_variogram_loo(np.zeros((5, 2)), np.zeros(5), kinds=())
