"""Unit tests for the micro-batching coalescer (repro.service.batcher)."""

import asyncio

import pytest

from repro.service.batcher import MicroBatcher


class Recorder:
    """Flush function that records the batches it receives."""

    def __init__(self, fail_on=None):
        self.batches = []
        self.fail_on = fail_on

    def __call__(self, configs):
        batch = list(configs)
        self.batches.append(batch)
        if self.fail_on is not None and any(c == self.fail_on for c in batch):
            raise RuntimeError(f"simulator exploded on {self.fail_on}")
        return [f"out:{config}" for config in batch]


def run(coro):
    return asyncio.run(coro)


class TestCoalescing:
    def test_concurrent_submits_share_one_flush(self):
        recorder = Recorder()

        async def main():
            batcher = MicroBatcher(recorder, max_batch=64, max_delay_ms=50.0)
            return await asyncio.gather(*(batcher.submit(i) for i in range(10)))

        results = run(main())
        assert results == [f"out:{i}" for i in range(10)]
        assert len(recorder.batches) == 1  # all ten coalesced
        assert recorder.batches[0] == list(range(10))  # arrival order kept

    def test_max_batch_triggers_immediate_flush(self):
        recorder = Recorder()

        async def main():
            batcher = MicroBatcher(recorder, max_batch=4, max_delay_ms=10_000.0)
            return await asyncio.gather(*(batcher.submit(i) for i in range(4)))

        run(main())
        # A 10-second delay cannot have elapsed: the size trigger flushed.
        assert recorder.batches == [[0, 1, 2, 3]]

    def test_max_batch_one_disables_coalescing(self):
        recorder = Recorder()

        async def main():
            batcher = MicroBatcher(recorder, max_batch=1, max_delay_ms=10_000.0)
            return await asyncio.gather(*(batcher.submit(i) for i in range(5)))

        results = run(main())
        assert results == [f"out:{i}" for i in range(5)]
        assert all(len(batch) == 1 for batch in recorder.batches)

    def test_delay_flushes_lone_request(self):
        recorder = Recorder()

        async def main():
            batcher = MicroBatcher(recorder, max_batch=64, max_delay_ms=5.0)
            return await batcher.submit("solo")

        assert run(main()) == "out:solo"
        assert recorder.batches == [["solo"]]

    def test_sequential_submits_flush_separately(self):
        recorder = Recorder()

        async def main():
            batcher = MicroBatcher(recorder, max_batch=64, max_delay_ms=1.0)
            first = await batcher.submit("a")
            second = await batcher.submit("b")
            return first, second

        assert run(main()) == ("out:a", "out:b")
        assert recorder.batches == [["a"], ["b"]]


class TestFailure:
    def test_flush_error_propagates_to_every_member(self):
        recorder = Recorder(fail_on=1)

        async def main():
            batcher = MicroBatcher(recorder, max_batch=64, max_delay_ms=50.0)
            return await asyncio.gather(
                *(batcher.submit(i) for i in range(3)), return_exceptions=True
            )

        results = run(main())
        assert all(isinstance(r, RuntimeError) for r in results)

    def test_failed_batch_does_not_poison_next(self):
        recorder = Recorder(fail_on="bad")

        async def main():
            batcher = MicroBatcher(recorder, max_batch=64, max_delay_ms=5.0)
            with pytest.raises(RuntimeError):
                await batcher.submit("bad")
            return await batcher.submit("good")

        assert run(main()) == "out:good"


class TestDrainAndStats:
    def test_drain_flushes_pending(self):
        recorder = Recorder()

        async def main():
            batcher = MicroBatcher(recorder, max_batch=64, max_delay_ms=60_000.0)
            futures = [asyncio.ensure_future(batcher.submit(i)) for i in range(3)]
            await asyncio.sleep(0)  # let the submits enqueue
            assert batcher.pending == 3
            await batcher.drain()
            assert batcher.pending == 0
            return await asyncio.gather(*futures)

        assert run(main()) == ["out:0", "out:1", "out:2"]
        assert recorder.batches == [[0, 1, 2]]

    def test_stats_track_batches(self):
        recorder = Recorder()

        async def main():
            batcher = MicroBatcher(recorder, max_batch=64, max_delay_ms=50.0)
            await asyncio.gather(*(batcher.submit(i) for i in range(8)))
            await batcher.submit("later")
            return batcher.stats

        stats = run(main())
        assert stats.requests == 9
        assert stats.flushes == 2
        assert stats.max_batch_seen == 8.0
        summary = stats.summary()
        assert summary["requests"] == 9
        assert summary["batch_size"]["count"] == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            MicroBatcher(lambda c: [], max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(lambda c: [], max_delay_ms=-1.0)
