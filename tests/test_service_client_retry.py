"""ServiceClient reconnect/backoff behaviour against scripted servers."""

import asyncio
import threading

import pytest

from repro.service import protocol
from repro.service.client import RETRYABLE_KINDS, AsyncServiceClient, ServiceClient
from repro.service.protocol import RemoteError
from repro.service.server import JsonLineServer, ServiceError


class ScriptedService(JsonLineServer):
    """Answers ``ping`` normally; one scripted failure per ``fail`` entry
    (consumed in order) for any other op."""

    def __init__(self, failures):
        super().__init__()
        self.failures = list(failures)
        self.calls = 0

    async def dispatch(self, request):
        if request.get("op") == "ping":
            return {"pong": True}
        self.calls += 1
        if self.failures:
            kind, details = self.failures.pop(0)
            raise ServiceError(kind, f"scripted {kind}", **details)
        return {"ok_after": self.calls}


class ServerThread:
    """Run any JsonLineServer on a background thread with its own loop."""

    def __init__(self, service):
        self.service = service
        self.ready = threading.Event()
        self.port = None
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()
        assert self.ready.wait(10), "server never came up"

    def _run(self):
        def on_ready(host, port):
            self.port = port
            self.ready.set()

        asyncio.run(self.service.serve("127.0.0.1", 0, on_ready=on_ready))

    def stop(self):
        with ServiceClient("127.0.0.1", self.port, timeout=5) as client:
            client.request("shutdown")
        self.thread.join(timeout=10)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        try:
            if self.thread.is_alive():
                self.stop()
        except Exception:
            pass


class TestRetryableErrors:
    def test_default_is_fail_fast(self):
        with ServerThread(ScriptedService([("Overloaded", {"retry_after_ms": 1})])) as st:
            with ServiceClient("127.0.0.1", st.port) as client:
                with pytest.raises(RemoteError) as err:
                    client.request("work")
                assert err.value.kind == "Overloaded"
                assert err.value.retry_after_ms == 1

    def test_retries_overloaded_until_success(self):
        failures = [("Overloaded", {"retry_after_ms": 1})] * 2
        with ServerThread(ScriptedService(failures)) as st:
            with ServiceClient("127.0.0.1", st.port, retries=3) as client:
                result = client.request("work")
                assert result["ok_after"] == 3  # two rejections, then served

    def test_retries_exhausted_raises_last_error(self):
        failures = [("Unavailable", {"retry_after_ms": 1})] * 5
        with ServerThread(ScriptedService(failures)) as st:
            with ServiceClient("127.0.0.1", st.port, retries=2) as client:
                with pytest.raises(RemoteError) as err:
                    client.request("work")
                assert err.value.kind == "Unavailable"
                assert st.service.calls == 3  # initial try + 2 retries

    def test_non_retryable_kinds_never_retry(self):
        with ServerThread(ScriptedService([("BadRequest", {})])) as st:
            with ServiceClient("127.0.0.1", st.port, retries=5) as client:
                with pytest.raises(RemoteError) as err:
                    client.request("work")
                assert err.value.kind == "BadRequest"
                assert st.service.calls == 1

    def test_retryable_kinds_are_the_documented_set(self):
        assert RETRYABLE_KINDS == {"Overloaded", "Unavailable"}


class DropFirstConnections:
    """Raw TCP server: drops the first N connections on arrival, then
    proxies the rest to a ScriptedService-style dispatch."""

    def __init__(self, drops):
        self.drops = drops
        self.accepted = 0
        self.ready = threading.Event()
        self.port = None
        self.stop_event = None
        self.loop = None
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()
        assert self.ready.wait(10)

    def _run(self):
        async def main():
            self.loop = asyncio.get_running_loop()
            self.stop_event = asyncio.Event()

            async def handle(reader, writer):
                self.accepted += 1
                if self.accepted <= self.drops:
                    writer.close()  # simulates a server dying mid-session
                    return
                while True:
                    request = await protocol.read_message(reader)
                    if request is None:
                        break
                    await protocol.write_message(
                        writer,
                        protocol.ok_response(request.get("id"), {"served": True}),
                    )

            server = await asyncio.start_server(handle, "127.0.0.1", 0)
            self.port = server.sockets[0].getsockname()[1]
            self.ready.set()
            async with server:
                await self.stop_event.wait()

        asyncio.run(main())

    def stop(self):
        self.loop.call_soon_threadsafe(self.stop_event.set)
        self.thread.join(timeout=10)


class TestReconnect:
    def test_reconnects_after_connection_drop(self):
        server = DropFirstConnections(drops=1)
        try:
            # The constructor's connection is the one that gets dropped;
            # with retries the request reconnects and succeeds.
            client = ServiceClient("127.0.0.1", server.port, retries=2)
            assert client.request("work") == {"served": True}
            client.close()
        finally:
            server.stop()

    def test_no_retries_surfaces_connection_error(self):
        server = DropFirstConnections(drops=2)
        try:
            client = ServiceClient("127.0.0.1", server.port)
            with pytest.raises(ConnectionError):
                client.request("work")
            client.close()
        finally:
            server.stop()

    def test_async_close_fails_inflight_requests(self):
        """close() must fail still-pending futures, not strand them: a
        request in flight to a hung server would otherwise await its
        future forever (regression: mark_dead closing a hung worker's
        client permanently hung every proxied request to it)."""

        async def main():
            async def handle(reader, writer):
                await reader.read()  # swallow everything, never answer

            server = await asyncio.start_server(handle, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            client = await AsyncServiceClient.connect("127.0.0.1", port)
            task = asyncio.create_task(client.request("ping"))
            while not client._pending:
                await asyncio.sleep(0.005)
            await client.close()
            with pytest.raises(ConnectionError):
                await asyncio.wait_for(task, 5)
            server.close()
            await server.wait_closed()

        asyncio.run(main())

    def test_backoff_honours_server_hint_and_caps(self):
        client = ServiceClient.__new__(ServiceClient)  # no connection needed
        client.backoff_base = 0.05
        client.backoff_max = 0.2
        import time

        t0 = time.perf_counter()
        client._backoff(0, hint_ms=1.0)
        assert time.perf_counter() - t0 < 0.05  # hint overrides exponential
        t0 = time.perf_counter()
        client._backoff(10)  # 0.05 * 2^10 would be 51s; the cap bounds it
        assert time.perf_counter() - t0 < 0.5


class SlowFirstService(JsonLineServer):
    """First ``slow`` call stalls ``delay`` seconds, the rest are instant;
    ``ping`` always answers immediately."""

    def __init__(self, delay=1.0):
        super().__init__()
        self.delay = delay
        self.calls = 0

    async def dispatch(self, request):
        if request.get("op") == "ping":
            return {"pong": True}
        self.calls += 1
        if self.calls == 1:
            await asyncio.sleep(self.delay)
        return {"ok_after": self.calls}


class TestReadTimeout:
    def test_timeout_drops_the_stream_so_late_replies_cannot_poison_it(self):
        """Regression: a read timeout used to leave the connection open, so
        the late reply sat buffered and the *next* request consumed it as
        its own response.  The timeout must tear the connection down; the
        follow-up request gets a fresh stream and a correct answer."""
        with ServerThread(SlowFirstService(delay=1.0)) as st:
            with ServiceClient("127.0.0.1", st.port, timeout=0.3) as client:
                with pytest.raises(TimeoutError):
                    client.request("slow")
                # Fresh connection, correct pairing — NOT the stale reply.
                assert client.request("ping") == {"pong": True}

    def test_timeout_is_retried_like_a_transport_failure(self):
        with ServerThread(SlowFirstService(delay=1.0)) as st:
            with ServiceClient(
                "127.0.0.1", st.port, timeout=0.3, retries=2
            ) as client:
                result = client.request("slow")
                assert result["ok_after"] == 2  # timed out once, then served
                assert st.service.calls == 2

    def test_async_per_request_timeout(self):
        """The async client's per-request timeout bounds a single await
        without poisoning the shared pipelined connection."""

        async def main():
            async def handle(reader, writer):
                await reader.read()  # swallow everything, never answer

            server = await asyncio.start_server(handle, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            async with await AsyncServiceClient.connect("127.0.0.1", port) as client:
                with pytest.raises((asyncio.TimeoutError, TimeoutError)):
                    await client.request("ping", timeout=0.2)
                assert not client.is_broken  # connection healthy, reply just late
            server.close()
            await server.wait_closed()

        asyncio.run(main())

