"""Deadline propagation: wire parsing, batcher shedding, server shedding."""

import asyncio
import threading
import time

import pytest

from repro.service.batcher import MicroBatcher
from repro.service.client import ServiceClient
from repro.service.protocol import Deadline, DeadlineExceeded, RemoteError
from repro.service.server import KrigingService

SIMULATOR = {"kind": "linear", "coefficients": [1.0, -2.0, 0.5], "offset": -6.0}


class TestDeadlineParsing:
    def test_absent_field_means_no_deadline(self):
        assert Deadline.from_request({"op": "ping"}) is None

    @pytest.mark.parametrize(
        "bad", [True, False, "250", None, float("inf"), float("nan"), [250]]
    )
    def test_malformed_budgets_are_treated_as_absent(self, bad):
        assert Deadline.from_request({"deadline_ms": bad}) is None

    def test_numeric_budget_parses(self):
        deadline = Deadline.from_request({"deadline_ms": 250})
        assert deadline is not None
        assert deadline.budget_ms == 250.0
        assert 0.0 < deadline.remaining_ms() <= 250.0
        assert not deadline.expired

    def test_expiry_and_raise(self):
        deadline = Deadline(0.0)
        assert deadline.expired
        with pytest.raises(DeadlineExceeded, match="dispatch"):
            deadline.raise_if_expired("dispatch")
        # A generous budget neither expires nor raises.
        Deadline(60_000).raise_if_expired("dispatch")

    def test_remaining_decreases(self):
        deadline = Deadline(50.0)
        first = deadline.remaining_ms()
        time.sleep(0.01)
        assert deadline.remaining_ms() < first


class TestBatcherShedding:
    def test_expired_requests_shed_instead_of_solving(self):
        flushed = []

        def flush(configs):
            flushed.append(list(configs))
            return [f"out:{c}" for c in configs]

        async def main():
            batcher = MicroBatcher(flush, max_batch=8, max_delay_ms=0.0)
            live = asyncio.ensure_future(batcher.submit("a", Deadline(60_000)))
            dead = asyncio.ensure_future(batcher.submit("b", Deadline(0.0)))
            bare = asyncio.ensure_future(batcher.submit("c", None))
            assert await live == "out:a"
            assert await bare == "out:c"
            with pytest.raises(DeadlineExceeded):
                await dead
            return batcher

        batcher = asyncio.run(main())
        # The expired request never reached a flush; the others coalesced.
        assert all("b" not in batch for batch in flushed)
        assert batcher.stats.deadline_misses == 1

    def test_all_expired_batch_flushes_nothing(self):
        def flush(configs):  # pragma: no cover - must never run
            raise AssertionError("flush ran for an all-expired batch")

        async def main():
            batcher = MicroBatcher(flush, max_batch=8, max_delay_ms=0.0)
            futures = [
                asyncio.ensure_future(batcher.submit(i, Deadline(0.0)))
                for i in range(3)
            ]
            for future in futures:
                with pytest.raises(DeadlineExceeded):
                    await future
            assert batcher.stats.deadline_misses == 3
            assert batcher.stats.flushes == 0

        asyncio.run(main())


class ServerThread:
    """A real KrigingService on a background thread."""

    def __init__(self):
        self.service = KrigingService()
        self.ready = threading.Event()
        self.port = None
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()
        assert self.ready.wait(10), "server never came up"

    def _run(self):
        def on_ready(host, port):
            self.port = port
            self.ready.set()

        asyncio.run(self.service.serve("127.0.0.1", 0, on_ready=on_ready))

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        try:
            with ServiceClient("127.0.0.1", self.port, timeout=5) as client:
                client.request("shutdown")
            self.thread.join(timeout=10)
        except Exception:
            pass


class TestServerShedding:
    def test_expired_request_is_shed_with_structured_error(self):
        with ServerThread() as st:
            with ServiceClient("127.0.0.1", st.port) as client:
                client.create_session(
                    "s", simulator=SIMULATOR, num_variables=3, distance=4.0,
                    variogram="linear",
                )
                with pytest.raises(RemoteError) as err:
                    client.request(
                        "evaluate", session="s", config=[1.0, 2.0, 3.0],
                        deadline_ms=0.0,
                    )
                assert err.value.kind == "DeadlineExceeded"
                # The shed is counted — in the session stats and in ping.
                assert client.stats("s")["deadline_misses"] >= 1
                assert client.ping()["deadline_misses"] >= 1

    def test_generous_deadline_serves_normally(self):
        with ServerThread() as st:
            # The client stamps deadline_ms from its timeout on every
            # request; a normal round trip must be unaffected by it.
            with ServiceClient("127.0.0.1", st.port, timeout=30.0) as client:
                client.create_session(
                    "s", simulator=SIMULATOR, num_variables=3, distance=4.0,
                    variogram="linear",
                )
                outcome = client.evaluate("s", [1.0, 2.0, 3.0])
                assert outcome.value == pytest.approx(1.0 - 4.0 + 1.5 - 6.0)
                assert client.stats("s")["deadline_misses"] == 0

    def test_expired_bulk_evaluate_is_shed(self):
        with ServerThread() as st:
            with ServiceClient("127.0.0.1", st.port) as client:
                client.create_session(
                    "s", simulator=SIMULATOR, num_variables=3, distance=4.0,
                    variogram="linear",
                )
                with pytest.raises(RemoteError) as err:
                    client.request(
                        "evaluate", session="s",
                        configs=[[1.0, 2.0, 3.0], [2.0, 2.0, 2.0]],
                        deadline_ms=0.0,
                    )
                assert err.value.kind == "DeadlineExceeded"

    def test_deadline_exceeded_is_not_retryable(self):
        from repro.service.client import RETRYABLE_KINDS

        # The budget is the *client's* own patience: once it is gone there
        # is no point re-sending, unlike Overloaded/Unavailable.
        assert "DeadlineExceeded" not in RETRYABLE_KINDS
