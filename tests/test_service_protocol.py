"""Unit tests for the service wire protocol (repro.service.protocol)."""

import json
import math

import pytest

from repro.core.estimator import EstimationOutcome
from repro.service import protocol


class TestFraming:
    def test_encode_decode_roundtrip(self):
        message = {"id": 7, "op": "evaluate", "config": [1.0, 2.5, -0.0]}
        line = protocol.encode(message)
        assert line.endswith(b"\n")
        assert b"\n" not in line[:-1]
        assert protocol.decode(line) == message

    def test_floats_roundtrip_bitwise(self):
        values = [0.1 + 0.2, 1e-309, 2**-1074, 123456789.123456789]
        decoded = protocol.decode(protocol.encode({"id": 1, "values": values}))
        assert decoded["values"] == values  # exact float equality

    def test_decode_rejects_invalid_json(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(b"{nope\n")

    def test_decode_rejects_non_object(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(b"[1, 2]\n")

    def test_encode_rejects_oversized(self):
        huge = {"id": 1, "blob": "x" * protocol.MAX_LINE_BYTES}
        with pytest.raises(protocol.ProtocolError):
            protocol.encode(huge)

    def test_encode_rejects_nan(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.encode({"id": 1, "value": float("nan")})

    def test_json_safe_scrubs_non_finite(self):
        scrubbed = protocol.json_safe(
            {"a": float("nan"), "b": [1.0, float("inf")], "c": {"d": -float("inf")}}
        )
        assert scrubbed == {"a": None, "b": [1.0, None], "c": {"d": None}}


class TestResponses:
    def test_ok_response_echoes_id(self):
        response = protocol.ok_response(42, {"value": 1.0})
        assert response == {"id": 42, "ok": True, "result": {"value": 1.0}}

    def test_error_response_structure(self):
        response = protocol.error_response("abc", "UnknownSession", "no such session")
        assert response["ok"] is False
        assert response["error"]["type"] == "UnknownSession"
        assert response["id"] == "abc"

    def test_remote_error_carries_kind(self):
        error = protocol.RemoteError("BadRequest", "missing field")
        assert error.kind == "BadRequest"
        assert "BadRequest" in str(error)


class TestOutcomeWire:
    def test_interpolation_roundtrip(self):
        outcome = EstimationOutcome(
            value=-41.25, interpolated=True, n_neighbors=9, variance=0.125
        )
        wire = protocol.outcome_to_wire(outcome)
        json.dumps(wire, allow_nan=False)  # wire form is strict JSON
        assert protocol.outcome_from_wire(wire) == outcome

    def test_simulation_nan_variance_becomes_null(self):
        outcome = EstimationOutcome(value=3.0, interpolated=False, n_neighbors=0)
        wire = protocol.outcome_to_wire(outcome)
        assert wire["variance"] is None
        back = protocol.outcome_from_wire(wire)
        assert math.isnan(back.variance)
        assert back.value == outcome.value
        assert back.exact_hit is False

    def test_exact_hit_preserved(self):
        outcome = EstimationOutcome(
            value=1.5, interpolated=True, n_neighbors=1, variance=0.0, exact_hit=True
        )
        assert protocol.outcome_from_wire(protocol.outcome_to_wire(outcome)) == outcome
