"""End-to-end tests of the evaluation service over real TCP connections.

Each test runs an ephemeral-port server inside ``asyncio.run``; clients
connect over loopback and speak the real wire protocol, so these cover the
full stack: framing, dispatch, per-session locking, the micro-batcher and
snapshot/restore — including the multi-client equivalence contract (the
service answers exactly like a local estimator fed the same queries).
"""

import asyncio

import numpy as np
import pytest

from repro.core.estimator import KrigingEstimator
from repro.service.client import AsyncServiceClient, ServiceClient
from repro.service.protocol import RemoteError
from repro.service.server import KrigingService

NV = 3
SIMULATOR = {"kind": "linear", "coefficients": [1.0, -2.0, 0.5], "offset": -6.0}
SESSION_KWARGS = dict(
    simulator=SIMULATOR, num_variables=NV, distance=4.0, variogram="linear"
)


def _field(config):
    return float(np.asarray(config, dtype=float) @ np.array([1.0, -2.0, 0.5]) - 6.0)


def _support(n=40, seed=0):
    rng = np.random.default_rng(seed)
    return np.unique(rng.integers(0, 6, size=(n, NV)), axis=0).astype(float)


def serve(test_body, **service_kwargs):
    """Run ``await test_body(client, service, host, port)`` against a live server."""

    async def main():
        service = KrigingService(**service_kwargs)
        server_task = asyncio.create_task(service.serve("127.0.0.1", 0))
        try:
            while service.address is None:
                await asyncio.sleep(0.005)
            host, port = service.address
            async with await AsyncServiceClient.connect(host, port) as client:
                return await test_body(client, service, host, port)
        finally:
            service.stop()
            await asyncio.wait_for(server_task, 10)

    return asyncio.run(main())


class TestBasicVerbs:
    def test_ping_and_create_and_list(self):
        async def body(client, service, host, port):
            assert (await client.ping())["protocol"] == 1
            info = await client.create_session("s1", **SESSION_KWARGS)
            assert info["session"] == "s1"
            assert info["num_variables"] == NV
            sessions = await client.list_sessions()
            assert [s["session"] for s in sessions] == ["s1"]

        serve(body)

    def test_create_duplicate_rejected_unless_replace(self):
        async def body(client, service, host, port):
            await client.create_session("dup", **SESSION_KWARGS)
            with pytest.raises(RemoteError) as err:
                await client.create_session("dup", **SESSION_KWARGS)
            assert err.value.kind == "SessionExists"
            await client.create_session("dup", replace=True, **SESSION_KWARGS)

        serve(body)

    def test_unknown_session_and_op_and_bad_name(self):
        async def body(client, service, host, port):
            with pytest.raises(RemoteError) as err:
                await client.evaluate("ghost", [1, 2, 3])
            assert err.value.kind == "UnknownSession"
            with pytest.raises(RemoteError) as err:
                await client.request("frobnicate")
            assert err.value.kind == "UnknownOp"
            with pytest.raises(RemoteError):
                await client.create_session("../evil", **SESSION_KWARGS)

        serve(body)

    def test_malformed_json_answered_with_protocol_error(self):
        async def body(client, service, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"{broken\n")
            await writer.drain()
            line = await reader.readline()
            assert b"ProtocolError" in line
            writer.close()
            await writer.wait_closed()

        serve(body)

    def test_fit_and_variogram_spec_dict(self):
        async def body(client, service, host, port):
            await client.create_session(
                "fitme",
                simulator=SIMULATOR,
                num_variables=NV,
                distance=4.0,
                variogram={
                    "family": "ExponentialVariogram",
                    "params": {"sill": 4.0, "range_": 3.0, "nugget_": 0.0},
                },
            )
            await client.simulate_many("fitme", _support().tolist())
            fitted = await client.fit("fitme")
            assert fitted["model"]["family"] == "ExponentialVariogram"

        serve(body)


class TestEvaluatePolicy:
    def test_matches_local_estimator(self):
        """The remote policy is the local policy: same decisions and values."""
        support = _support()
        queries = np.vstack([support[:6] + 0.25, support[:2]])  # interp + exact hits

        local = KrigingEstimator(_field, NV, distance=4.0, variogram="linear")
        for point in support:
            local.record_measurement(point, _field(point))
        expected = local.evaluate_batch(queries)

        async def body(client, service, host, port):
            await client.create_session("mirror", **SESSION_KWARGS)
            await client.simulate_many("mirror", support.tolist())
            return await client.evaluate_many("mirror", queries.tolist())

        remote = serve(body)
        assert [o.interpolated for o in remote] == [o.interpolated for o in expected]
        assert [o.exact_hit for o in remote] == [o.exact_hit for o in expected]
        assert [o.n_neighbors for o in remote] == [o.n_neighbors for o in expected]
        np.testing.assert_allclose(
            [o.value for o in remote], [o.value for o in expected], rtol=1e-12
        )

    def test_concurrent_clients_coalesce_and_match(self):
        """Several connections at once: coalesced answers equal per-query ones."""
        support = _support(60, seed=1)
        rng = np.random.default_rng(2)
        queries = support[rng.integers(0, len(support), size=24)] + rng.uniform(
            0.1, 0.4, size=(24, NV)
        )

        local = KrigingEstimator(_field, NV, distance=4.0, variogram="linear")
        for point in support:
            local.record_measurement(point, _field(point))
        expected = [local.evaluate(q).value for q in queries]

        async def body(client, service, host, port):
            await client.create_session("shared", max_delay_ms=20.0, **SESSION_KWARGS)
            await client.simulate_many("shared", support.tolist())

            async def one_client(chunk):
                async with await AsyncServiceClient.connect(host, port) as conn:
                    return [
                        (await conn.evaluate("shared", q)).value for q in chunk.tolist()
                    ]

            chunks = np.split(queries, 4)
            values = await asyncio.gather(*(one_client(chunk) for chunk in chunks))
            stats = await client.stats("shared")
            return [v for chunk in values for v in chunk], stats

        values, stats = serve(body)
        np.testing.assert_allclose(values, expected, rtol=1e-9, atol=1e-12)
        assert stats["batcher"]["requests"] == 24
        # Four concurrent clients must have shared at least some flushes.
        assert stats["batcher"]["flushes"] < 24
        assert stats["n_simulated"] == len(support)

    def test_simulate_with_client_measured_value(self):
        async def body(client, service, host, port):
            await client.create_session("meas", **SESSION_KWARGS)
            outcome = await client.simulate("meas", [1, 2, 3], value=123.5)
            assert outcome.value == 123.5
            # The pushed value is now support: an exact revisit returns it.
            again = await client.evaluate("meas", [1, 2, 3])
            assert again.exact_hit and again.value == 123.5

        serve(body)


class TestSnapshotVerbs:
    def test_snapshot_restore_roundtrip(self, tmp_path):
        support = _support()
        probes = (support[:5] + 0.3).tolist()

        async def body(client, service, host, port):
            await client.create_session("origin", **SESSION_KWARGS)
            await client.simulate_many("origin", support.tolist())
            before = await client.evaluate_many("origin", probes)
            written = await client.snapshot("origin", path=str(tmp_path / "snap"))
            await client.restore(path=written["path"], session="copy1")
            await client.restore(path=written["path"], session="copy2")
            out1 = await client.evaluate_many("copy1", probes)
            out2 = await client.evaluate_many("copy2", probes)
            stats = await client.stats()
            return before, out1, out2, stats

        before, out1, out2, stats = serve(body)
        # Two cold restores are bit-identical; the originating session
        # agrees to the engine envelope (its factor cache is warm).
        assert [o.value for o in out1] == [o.value for o in out2]
        np.testing.assert_allclose(
            [o.value for o in before], [o.value for o in out1], rtol=1e-9, atol=1e-12
        )
        by_name = {s["session"]: s for s in stats["sessions"]}
        assert by_name["copy1"]["cache_size"] == by_name["origin"]["cache_size"]

    def test_named_snapshot_requires_dir(self, tmp_path):
        async def body(client, service, host, port):
            await client.create_session("nodir", **SESSION_KWARGS)
            with pytest.raises(RemoteError) as err:
                await client.snapshot("nodir")
            assert err.value.kind == "BadRequest"

        serve(body)

    def test_named_snapshot_with_dir(self, tmp_path):
        async def body(client, service, host, port):
            await client.create_session("named", **SESSION_KWARGS)
            await client.simulate("named", [1, 1, 1])
            written = await client.snapshot("named")
            restored = await client.restore(name="named", session="named2")
            return written, restored

        written, restored = serve(body, snapshot_dir=tmp_path)
        assert written["path"].endswith("named.npz")
        assert restored["cache_size"] == 1

    def test_restore_missing_snapshot(self, tmp_path):
        async def body(client, service, host, port):
            with pytest.raises(RemoteError) as err:
                await client.restore(path=str(tmp_path / "nope.npz"))
            assert err.value.kind == "UnknownSnapshot"

        serve(body)


class TestSyncClientAndShutdown:
    def test_sync_client_full_cycle(self):
        async def body(client, service, host, port):
            def sync_work():
                with ServiceClient(host, port) as sync_client:
                    sync_client.create_session("sync", **SESSION_KWARGS)
                    sync_client.simulate("sync", [0, 0, 0])
                    sync_client.simulate("sync", [1, 1, 1])
                    outcome = sync_client.evaluate("sync", [0.4, 0.4, 0.4])
                    stats = sync_client.stats("sync")
                    return outcome, stats

            return await asyncio.to_thread(sync_work)

        outcome, stats = serve(body)
        assert outcome.interpolated
        assert stats["cache_size"] == 2

    def test_shutdown_stops_server(self):
        async def main():
            service = KrigingService()
            server_task = asyncio.create_task(service.serve("127.0.0.1", 0))
            while service.address is None:
                await asyncio.sleep(0.005)
            host, port = service.address
            async with await AsyncServiceClient.connect(host, port) as client:
                result = await client.shutdown()
            assert result == {"stopping": True}
            await asyncio.wait_for(server_task, 10)  # exits by itself

        asyncio.run(main())


class TestFaultIsolation:
    def test_bad_config_rejected_before_batching(self):
        """A malformed config fails only its sender, never the batch."""

        async def body(client, service, host, port):
            await client.create_session("iso", max_delay_ms=20.0, **SESSION_KWARGS)
            await client.simulate_many("iso", _support().tolist())
            good = (_support()[:4] + 0.3).tolist()

            async def bad_client():
                async with await AsyncServiceClient.connect(host, port) as conn:
                    with pytest.raises(RemoteError) as err:
                        await conn.evaluate("iso", [1.0, 2.0])  # wrong dimension
                    assert err.value.kind == "BadRequest"
                    with pytest.raises(RemoteError):
                        await conn.request("evaluate", session="iso", config="nope")
                # A NaN config must be sent as a raw frame (the client's own
                # encoder rejects it): the server answers BadRequest.
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(
                    b'{"id": 1, "op": "evaluate", "session": "iso", '
                    b'"config": [1.0, NaN, 2.0]}\n'
                )
                await writer.drain()
                line = await reader.readline()
                assert b"BadRequest" in line
                writer.close()
                await writer.wait_closed()

            async def good_client():
                async with await AsyncServiceClient.connect(host, port) as conn:
                    return [
                        (await conn.evaluate("iso", q)).value for q in good
                    ]

            results = await asyncio.gather(bad_client(), good_client())
            return results[1]

        values = serve(body)
        assert len(values) == 4 and all(np.isfinite(values))

    def test_unserializable_request_id_still_answered(self):
        """A NaN request id (json.loads accepts it) gets a null-id error
        response instead of a silently dropped frame."""

        async def body(client, service, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b'{"id": NaN, "op": "ping"}\n')
            await writer.drain()
            line = await reader.readline()
            writer.close()
            await writer.wait_closed()
            return line

        line = serve(body)
        assert b'"id":null' in line
        assert b"ProtocolError" in line

    def test_oversized_line_answered_with_protocol_error(self):
        from repro.service.protocol import MAX_LINE_BYTES

        async def body(client, service, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"x" * (MAX_LINE_BYTES + 1024))
            await writer.drain()
            line = await asyncio.wait_for(reader.readline(), 30)
            writer.close()
            await writer.wait_closed()
            return line

        line = serve(body)
        assert b"ProtocolError" in line


class TestSimulateValidation:
    def test_simulate_rejects_nan_config_raw_frame(self):
        """simulate mutates the shared cache permanently — same door check
        as evaluate (a raw frame, since clients refuse to encode NaN)."""

        async def body(client, service, host, port):
            await client.create_session("guard", **SESSION_KWARGS)
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(
                b'{"id": 5, "op": "simulate", "session": "guard", '
                b'"config": [NaN, 1.0, 1.0], "value": 5.0}\n'
            )
            await writer.drain()
            line = await reader.readline()
            writer.close()
            await writer.wait_closed()
            stats = await client.stats("guard")
            return line, stats

        line, stats = serve(body)
        assert b"BadRequest" in line
        assert stats["cache_size"] == 0  # nothing entered the shared cache

    def test_newline_in_session_name_rejected(self):
        async def body(client, service, host, port):
            with pytest.raises(RemoteError):
                await client.create_session("demo\n", **SESSION_KWARGS)

        serve(body)
