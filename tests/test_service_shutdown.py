"""Graceful shutdown: signals, drain, and snapshot-path hardening.

The signal tests spawn a real ``repro serve`` subprocess and assert the
operator contract: SIGTERM/SIGINT stop the listener, drain in-flight
work and exit 0 — never a traceback, never a dropped accepted request.
"""

import asyncio
import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

from repro.service.client import AsyncServiceClient, ServiceClient
from repro.service.protocol import RemoteError
from repro.service.server import KrigingService

NV = 3
SIMULATOR = {"kind": "linear", "coefficients": [1.0, -2.0, 0.5], "offset": -6.0}
SESSION_KWARGS = dict(
    simulator=SIMULATOR, num_variables=NV, distance=4.0, variogram="linear"
)


def _spawn_server(tmp_path, *extra):
    env = dict(os.environ)
    src = str(pathlib.Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    port_file = tmp_path / "port"
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--port-file",
            str(port_file),
            *extra,
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
    )
    deadline = time.monotonic() + 60
    while True:
        try:
            text = port_file.read_text().strip()
            if text:
                return process, int(text)
        except FileNotFoundError:
            pass
        if process.poll() is not None or time.monotonic() > deadline:
            process.kill()
            raise RuntimeError("server did not start")
        time.sleep(0.02)


class TestSignals:
    @pytest.mark.parametrize("signum", [signal.SIGTERM, signal.SIGINT])
    def test_signal_exits_zero_after_serving(self, tmp_path, signum):
        process, port = _spawn_server(tmp_path)
        try:
            with ServiceClient("127.0.0.1", port, timeout=30) as client:
                client.create_session("s", **SESSION_KWARGS)
                client.simulate("s", [1.0, 2.0, 3.0])
            process.send_signal(signum)
            returncode = process.wait(timeout=30)
            stderr = process.stderr.read().decode()
            assert returncode == 0, stderr
            assert "Traceback" not in stderr
        finally:
            if process.poll() is None:
                process.kill()

    def test_sigterm_with_no_activity(self, tmp_path):
        process, _port = _spawn_server(tmp_path)
        try:
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=30) == 0
        finally:
            if process.poll() is None:
                process.kill()


class TestDrain:
    def test_stop_answers_every_inflight_request(self, tmp_path):
        """stop() mid-burst: the listener closes but every accepted
        request is answered before serve() returns."""

        async def main():
            service = KrigingService()
            server_task = asyncio.create_task(service.serve("127.0.0.1", 0))
            while service.address is None:
                await asyncio.sleep(0.005)
            async with await AsyncServiceClient.connect(*service.address) as client:
                await client.create_session(
                    "s", max_delay_ms=20.0, **SESSION_KWARGS
                )
                await client.simulate("s", [1.0, 2.0, 3.0])
                tasks = [
                    asyncio.create_task(client.evaluate("s", [1.0, 2.0, 3.0]))
                    for _ in range(10)
                ]
                await asyncio.sleep(0)  # let the requests hit the wire
                service.stop()
                outcomes = await asyncio.gather(*tasks)
                assert len(outcomes) == 10
                assert all(o.exact_hit for o in outcomes)
            await asyncio.wait_for(server_task, 15)

        asyncio.run(main())


class TestSnapshotPathHardening:
    def run_with_service(self, tmp_path, body):
        async def main():
            snapshot_dir = tmp_path / "snaps"
            snapshot_dir.mkdir()
            service = KrigingService(snapshot_dir=snapshot_dir)
            server_task = asyncio.create_task(service.serve("127.0.0.1", 0))
            while service.address is None:
                await asyncio.sleep(0.005)
            try:
                async with await AsyncServiceClient.connect(
                    *service.address
                ) as client:
                    await client.create_session("s", **SESSION_KWARGS)
                    await body(client, snapshot_dir)
            finally:
                service.stop()
                await asyncio.wait_for(server_task, 15)

        asyncio.run(main())

    @pytest.mark.parametrize(
        "hostile",
        [
            "../escape",
            "..",
            "a/b",
            "a\\b",
            ".hidden",
            "",
            "x" * 200,
            "name\n",
        ],
    )
    def test_hostile_names_rejected(self, tmp_path, hostile):
        async def body(client, snapshot_dir):
            with pytest.raises(RemoteError) as err:
                await client.snapshot("s", name=hostile)
            assert err.value.kind in ("BadRequest", "ValueError")
            with pytest.raises(RemoteError) as err:
                await client.restore(name=hostile, session="t")
            assert err.value.kind in ("BadRequest", "ValueError")
            assert list(snapshot_dir.iterdir()) == []  # nothing written

        self.run_with_service(tmp_path, body)

    def test_symlink_escape_rejected(self, tmp_path):
        """A symlink planted inside the snapshot dir must not let a
        well-formed name write outside it."""

        async def body(client, snapshot_dir):
            outside = tmp_path / "outside.npz"
            (snapshot_dir / "evil.npz").symlink_to(outside)
            with pytest.raises(RemoteError) as err:
                await client.snapshot("s", name="evil")
            assert err.value.kind == "BadRequest"
            assert not outside.exists()

        self.run_with_service(tmp_path, body)

    def test_honest_names_still_work(self, tmp_path):
        async def body(client, snapshot_dir):
            await client.simulate("s", [1.0, 2.0, 3.0])
            result = await client.snapshot("s", name="good-name_1.0")
            assert (snapshot_dir / "good-name_1.0.npz").exists()
            restored = await client.restore(
                name="good-name_1.0", session="copy"
            )
            assert restored["cache_size"] == 1
            assert result["session"] == "s"

        self.run_with_service(tmp_path, body)


class TestSnapshotDuringTraffic:
    def test_snapshot_concurrent_with_evaluates_is_consistent(self, tmp_path):
        """A snapshot taken while evaluates are in flight restores to a
        consistent session: restore succeeds, and re-snapshotting the
        restored session reproduces the file byte for byte (no torn
        state can survive that round trip)."""

        async def main():
            service = KrigingService()
            server_task = asyncio.create_task(service.serve("127.0.0.1", 0))
            while service.address is None:
                await asyncio.sleep(0.005)
            async with await AsyncServiceClient.connect(*service.address) as client:
                await client.create_session(
                    "busy", max_delay_ms=5.0, **SESSION_KWARGS
                )
                support = [[float(i), float(j), 1.0] for i in range(4) for j in range(4)]
                await client.simulate_many("busy", support)

                stop = asyncio.Event()

                async def traffic():
                    count = 0
                    while not stop.is_set():
                        await client.evaluate("busy", [1.3, 2.3, 1.0])
                        count += 1
                    return count

                traffic_tasks = [asyncio.create_task(traffic()) for _ in range(4)]
                snap_path = tmp_path / "mid.npz"
                for _ in range(5):  # several snapshots mid-stream
                    await client.snapshot("busy", path=str(snap_path))
                    await asyncio.sleep(0.005)
                stop.set()
                counts = await asyncio.gather(*traffic_tasks)
                assert sum(counts) > 0

                # Restore under the *same* name (the manifest carries it)
                # on a second service, so the re-snapshot is byte-comparable.
                twin = KrigingService()
                twin_task = asyncio.create_task(twin.serve("127.0.0.1", 0))
                while twin.address is None:
                    await asyncio.sleep(0.005)
                async with await AsyncServiceClient.connect(
                    *twin.address
                ) as twin_client:
                    restored = await twin_client.restore(path=str(snap_path))
                    assert restored["session"] == "busy"
                    assert restored["cache_size"] == len(support)
                    await twin_client.snapshot(
                        "busy", path=str(tmp_path / "re.npz")
                    )
                    assert (
                        (tmp_path / "re.npz").read_bytes()
                        == snap_path.read_bytes()
                    )
                    # And the restored session answers like the original.
                    a = await client.evaluate("busy", [1.3, 2.3, 1.0])
                    b = await twin_client.evaluate("busy", [1.3, 2.3, 1.0])
                    assert (a.value, a.variance) == (b.value, b.variance)
                twin.stop()
                await asyncio.wait_for(twin_task, 15)
            service.stop()
            await asyncio.wait_for(server_task, 15)

        asyncio.run(main())
