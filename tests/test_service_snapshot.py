"""Snapshot/restore round-trips: state hooks and session snapshot files.

The contract: a restored estimator/session makes **bit-identical** decisions
and cache additions to the snapshotted one fed the same queries, its stats
counters and quantile-sketch markers round-trip exactly, and two restores of
one snapshot answer queries bit-identically (the originating instance, whose
factor cache may be warm, agrees within the engine's ~1e-9 envelope).
"""

import json

import numpy as np
import pytest

from repro.core.cache import SimulationCache
from repro.core.estimator import KrigingEstimator
from repro.core.models import (
    ExponentialVariogram,
    GaussianVariogram,
    LinearVariogram,
    NuggetVariogram,
    PowerVariogram,
    SphericalVariogram,
    variogram_from_state,
)
from repro.experiments.registry import build_benchmark
from repro.service.session import EstimatorSession, load_snapshot, make_simulator
from repro.utils.quantiles import QuantileSketch


def _json_roundtrip(state):
    """Snapshot manifests travel as JSON: every non-array state must survive."""
    return json.loads(json.dumps(state))


class TestModelState:
    @pytest.mark.parametrize(
        "model",
        [
            LinearVariogram(slope=0.125),
            SphericalVariogram(sill=3.5, range_=7.25, nugget_=0.5),
            ExponentialVariogram(sill=25.0, range_=8.0),
            GaussianVariogram(sill=1.0, range_=2.0, nugget_=0.125),
            PowerVariogram(scale=0.3, exponent=1.5),
            NuggetVariogram(nugget_=2.0),
        ],
    )
    def test_roundtrip_bitwise(self, model):
        restored = variogram_from_state(_json_roundtrip(model.to_state()))
        assert restored == model
        h = np.linspace(0.0, 20.0, 64)
        np.testing.assert_array_equal(np.asarray(model(h)), np.asarray(restored(h)))

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            variogram_from_state({"family": "FancyVariogram", "params": {}})

    def test_malformed_state_rejected(self):
        with pytest.raises(ValueError):
            variogram_from_state({"params": {}})


class TestCacheState:
    def test_roundtrip_bitwise_and_keys(self):
        cache = SimulationCache(3)
        rng = np.random.default_rng(0)
        rows = rng.uniform(-5, 5, size=(150, 3))
        rows[0, 0] = -0.0  # signed-zero key normalization must survive
        for row in rows:
            cache.add(row, float(row.sum()))
        restored = SimulationCache.from_state(cache.to_state())
        np.testing.assert_array_equal(cache.points, restored.points)
        np.testing.assert_array_equal(cache.values, restored.values)
        assert len(restored) == len(cache)
        # Exact-hit index rebuilt: lookups and duplicate rejection work.
        assert restored.lookup(rows[7]) == cache.lookup(rows[7])
        assert restored.lookup(np.array([0.0, rows[0][1], rows[0][2]])) is not None
        with pytest.raises(ValueError):
            restored.add(rows[3], 1.0)
        # And it keeps growing past the restored size.
        restored.add([99.0, 99.0, 99.0], 5.0)
        assert len(restored) == 151

    def test_version_guard(self):
        cache = SimulationCache(2)
        state = cache.to_state()
        state["version"] = 99
        with pytest.raises(ValueError):
            SimulationCache.from_state(state)


class TestSketchState:
    def test_streaming_continues_identically(self):
        rng = np.random.default_rng(1)
        first, second = rng.normal(10, 3, size=400), rng.normal(12, 2, size=300)
        sketch = QuantileSketch()
        for x in first:
            sketch.update(float(x))
        restored = QuantileSketch.from_state(_json_roundtrip(sketch.to_state()))
        assert restored.to_state() == sketch.to_state()
        for x in second:
            sketch.update(float(x))
            restored.update(float(x))
        assert sketch.summary() == restored.summary()  # bitwise equal markers

    def test_empty_sketch_roundtrip(self):
        restored = QuantileSketch.from_state(_json_roundtrip(QuantileSketch().to_state()))
        assert restored.count == 0 and np.isnan(restored.mean)


class TestEstimatorState:
    def _simulate(self, config):
        c = np.asarray(config, dtype=float)
        return float(c @ np.array([1.0, -2.0, 0.5]) - 6.0)

    def _loaded(self, **kwargs):
        est = KrigingEstimator(self._simulate, 3, distance=4.0, **kwargs)
        rng = np.random.default_rng(3)
        pts = np.unique(rng.integers(0, 6, size=(50, 3)), axis=0).astype(float)
        est.evaluate_batch(pts)  # all simulate
        est.evaluate_batch(pts[:20] + 0.25)  # interpolations feed the sketch
        return est, pts

    def test_roundtrip_preserves_stats_and_decisions(self):
        est, pts = self._loaded(variogram="auto", min_fit_points=6, refit_interval=7)
        state = est.to_state()
        # "cache" and "factor_entries" hold raw arrays (NPZ members in the
        # file format); everything else must survive a JSON round trip.
        manifest = _json_roundtrip(
            {k: v for k, v in state.items() if k not in ("cache", "factor_entries")}
        )
        manifest["cache"] = state["cache"]
        manifest["factor_entries"] = state["factor_entries"]
        twin_a = KrigingEstimator.from_state(self._simulate, manifest)
        twin_b = KrigingEstimator.from_state(self._simulate, manifest)

        assert twin_a.stats.to_state() == est.stats.to_state()
        np.testing.assert_array_equal(est.cache.points, twin_a.cache.points)

        # Mixed follow-up (interpolations + fresh simulations): the two cold
        # twins are bitwise identical; the warm original matches decisions
        # and cache bitwise, values to the engine envelope.
        follow = np.vstack([pts[:10] + 0.4, pts[:4], np.array([[9.0, 9.0, 9.0]])])
        out_o = est.evaluate_batch(follow)
        out_a = twin_a.evaluate_batch(follow)
        out_b = twin_b.evaluate_batch(follow)
        assert [o.value for o in out_a] == [o.value for o in out_b]
        assert [o.variance for o in out_a] == [o.variance for o in out_b]
        assert [o.interpolated for o in out_o] == [o.interpolated for o in out_a]
        assert [o.exact_hit for o in out_o] == [o.exact_hit for o in out_a]
        np.testing.assert_allclose(
            [o.value for o in out_o], [o.value for o in out_a], rtol=1e-9, atol=1e-12
        )
        np.testing.assert_array_equal(est.cache.points, twin_a.cache.points)
        np.testing.assert_array_equal(est.cache.values, twin_a.cache.values)
        assert est.stats.n_simulated == twin_a.stats.n_simulated
        assert (
            est.stats.neighbor_sketch.to_state()
            == twin_a.stats.neighbor_sketch.to_state()
        )

    def test_fitted_model_travels(self):
        est, _ = self._loaded(variogram="exponential", min_fit_points=6)
        est.variogram  # force the identification
        state = est.to_state()
        assert state["fitted"]["family"] == "ExponentialVariogram"
        twin = KrigingEstimator.from_state(self._simulate, state)
        assert twin._fitted == est._fitted
        assert twin._fitted_at == est._fitted_at

    def test_custom_callable_spec_rejected(self):
        est = KrigingEstimator(self._simulate, 3, variogram=lambda h: h)
        with pytest.raises(ValueError):
            est.to_state()

    def test_overrides_apply(self):
        est, _ = self._loaded(variogram="linear")
        twin = KrigingEstimator.from_state(self._simulate, est.to_state(), n_jobs=2)
        assert twin.n_jobs == 2

    def test_version_guard(self):
        est, _ = self._loaded(variogram="linear")
        state = est.to_state()
        state["version"] = 0
        with pytest.raises(ValueError):
            KrigingEstimator.from_state(self._simulate, state)


class TestSessionSnapshotFile:
    def test_file_roundtrip_bitwise(self, tmp_path):
        simulate, nv = make_simulator({"kind": "quadratic", "center": [2.0, 2.0]}, 2)
        est = KrigingEstimator(simulate, nv, distance=3.0, variogram="linear")
        session = EstimatorSession("file-test", est, {"kind": "quadratic", "center": [2.0, 2.0]})
        rng = np.random.default_rng(5)
        pts = np.unique(rng.integers(0, 5, size=(30, 2)), axis=0).astype(float)
        session.evaluate_batch(pts)
        session.evaluate_batch(pts[:8] + 0.3)

        path = session.snapshot(tmp_path / "snap")
        assert path.suffix == ".npz"
        restored = EstimatorSession.restore(path)
        assert restored.name == "file-test"
        assert restored.simulator_spec == session.simulator_spec
        np.testing.assert_array_equal(
            session.estimator.cache.points, restored.estimator.cache.points
        )
        assert (
            restored.estimator.stats.to_state() == session.estimator.stats.to_state()
        )
        # Snapshotting the restored session reproduces the state exactly.
        again = load_snapshot(restored.snapshot(tmp_path / "snap2"))
        first = load_snapshot(path)
        np.testing.assert_array_equal(
            first["estimator"]["cache"]["points"],
            again["estimator"]["cache"]["points"],
        )
        np.testing.assert_array_equal(
            first["estimator"]["cache"]["values"],
            again["estimator"]["cache"]["values"],
        )
        def strip(state):
            return {
                k: v
                for k, v in state["estimator"].items()
                if k not in ("cache", "factor_entries")
            }

        assert json.dumps(strip(first), sort_keys=True) == json.dumps(
            strip(again), sort_keys=True
        )
        # The factor-cache section (format v2) round-trips byte for byte.
        fe_first = first["estimator"]["factor_entries"]
        fe_again = again["estimator"]["factor_entries"]
        assert (fe_first is None) == (fe_again is None)
        if fe_first is not None:
            assert len(fe_first["entries"]) == len(fe_again["entries"])
            for a, b in zip(fe_first["entries"], fe_again["entries"]):
                assert a["shift"] == b["shift"]
                np.testing.assert_array_equal(a["rows"], b["rows"])
                np.testing.assert_array_equal(a["gamma"], b["gamma"])
                np.testing.assert_array_equal(a["chol"], b["chol"])

    def test_dimension_mismatch_rejected(self, tmp_path):
        simulate, nv = make_simulator({"kind": "linear"}, 2)
        est = KrigingEstimator(simulate, nv, variogram="linear")
        session = EstimatorSession("dims", est, {"kind": "benchmark", "name": "fir"})
        # FIR has Nv=2 as well, so fake a mismatch via a 3-var estimator.
        state = session.to_state()
        state["estimator"]["cache"]["num_variables"] = 7
        with pytest.raises(ValueError):
            EstimatorSession.from_state(state)

    def test_simulator_registry(self):
        with pytest.raises(ValueError):
            make_simulator({"kind": "warp-drive"}, 2)
        with pytest.raises(ValueError):
            make_simulator({"kind": "linear"})  # needs num_variables
        simulate, nv = make_simulator({"kind": "benchmark", "name": "fir"}, None)
        assert nv == 2


class TestFirMidReplaySnapshot:
    """The satellite scenario: snapshot taken mid-replay of the FIR benchmark."""

    def test_mid_replay_roundtrip(self, tmp_path):
        setup = build_benchmark("fir", "small")
        unique = setup.record_trajectory().unique_first_visits()
        configs = np.asarray(unique.configurations, dtype=np.float64)
        truth = {
            tuple(c): float(v) for c, v in zip(configs.tolist(), unique.values)
        }

        def lookup(config):
            return truth[tuple(np.asarray(config, dtype=np.float64).tolist())]

        kwargs = dict(
            distance=3.0,
            variogram="auto",
            min_fit_points=4,
            refit_interval=1,
        )
        est = KrigingEstimator(lookup, configs.shape[1], **kwargs)
        half = configs.shape[0] // 2
        est.evaluate_batch(configs[:half])

        session = EstimatorSession("fir-mid", est, {"kind": "benchmark", "name": "fir"})
        path = session.snapshot(tmp_path / "fir-mid")
        sketch_at_snapshot = est.stats.neighbor_sketch.to_state()

        restored_a = EstimatorSession.restore(path)
        restored_b = EstimatorSession.restore(path)
        assert (
            restored_a.estimator.stats.neighbor_sketch.to_state()
            == sketch_at_snapshot
        )
        assert restored_a.estimator.stats.to_state() == est.stats.to_state()

        rest = configs[half:]
        out_o = est.evaluate_batch(rest)
        out_a = restored_a.estimator.evaluate_batch(rest)
        out_b = restored_b.estimator.evaluate_batch(rest)

        # Cold twins: bitwise. Warm original: identical decisions/cache,
        # values within the engine envelope.
        assert [o.value for o in out_a] == [o.value for o in out_b]
        assert [o.interpolated for o in out_o] == [o.interpolated for o in out_a]
        np.testing.assert_allclose(
            [o.value for o in out_o], [o.value for o in out_a], rtol=1e-9, atol=1e-12
        )
        np.testing.assert_array_equal(
            est.cache.points, restored_a.estimator.cache.points
        )
        np.testing.assert_array_equal(
            est.cache.values, restored_a.estimator.cache.values
        )
        assert est.stats.n_simulated == restored_a.estimator.stats.n_simulated
        assert est.stats.n_interpolated == restored_a.estimator.stats.n_interpolated
        assert (
            est.stats.neighbor_sketch.to_state()
            == restored_a.estimator.stats.neighbor_sketch.to_state()
        )
        # The mid-replay restore finishes exactly like an uninterrupted run.
        full = KrigingEstimator(lookup, configs.shape[1], **kwargs)
        full.evaluate_batch(configs)
        np.testing.assert_array_equal(full.cache.points, restored_a.estimator.cache.points)
        assert full.stats.n_simulated == restored_a.estimator.stats.n_simulated
