"""Shared-memory arena and zero-copy solve path (:mod:`repro.core.shm`).

The arena's contract: published arrays re-attach bitwise, appends copy
incrementally into the same segment, a capacity regrow allocates a fresh
segment under a new generation (the worker memo's invalidation key), and
``close`` unlinks everything idempotently.  The solve path's contract:
``ordinary_kriging_grouped_shm`` answers bit-identically to every other
backend, and failures degrade structurally (``ShmAttachError`` → pickled
dispatch, one warning) instead of wedging a flush.
"""

import warnings
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro.core import estimator as estimator_module
from repro.core import shm
from repro.core.estimator import KrigingEstimator
from repro.core.kriging import (
    ordinary_kriging_grouped,
    ordinary_kriging_grouped_shm,
)
from repro.core.models import ExponentialVariogram
from repro.core.shm import (
    CacheSpec,
    ShmArena,
    ShmAttachError,
    attach_cache,
    attach_flush,
    shm_available,
)

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="multiprocessing.shared_memory unavailable"
)

VARIOGRAM = ExponentialVariogram(sill=25.0, range_=8.0)


def _pool(rng, n, dim=4):
    points = rng.uniform(0.0, 9.0, size=(n, dim))
    values = points.sum(axis=1)
    return points, values


class TestArena:
    def test_cache_publish_attach_bitwise(self):
        rng = np.random.default_rng(0)
        points, values = _pool(rng, 37)
        arena = ShmArena()
        try:
            spec = arena.publish_cache(points, values)
            got_points, got_values = attach_cache(spec)
            np.testing.assert_array_equal(got_points, points)
            np.testing.assert_array_equal(got_values, values)
        finally:
            arena.close()

    def test_incremental_append_same_segment(self):
        rng = np.random.default_rng(1)
        points, values = _pool(rng, 20)
        arena = ShmArena()
        try:
            first = arena.publish_cache(points[:10], values[:10])
            second = arena.publish_cache(points, values)
            # Under capacity: same segment, same generation, more rows.
            assert second.name == first.name
            assert second.generation == first.generation
            assert second.rows == 20
            got_points, got_values = attach_cache(second)
            np.testing.assert_array_equal(got_points, points)
            np.testing.assert_array_equal(got_values, values)
        finally:
            arena.close()

    def test_regrow_bumps_generation_and_renames(self):
        rng = np.random.default_rng(2)
        points, values = _pool(rng, 70)
        arena = ShmArena()
        try:
            small = arena.publish_cache(points[:60], values[:60])
            big_points, big_values = _pool(rng, small.capacity + 1)
            grown = arena.publish_cache(big_points, big_values)
            assert grown.name != small.name
            assert grown.generation > small.generation
            got_points, _ = attach_cache(grown)
            np.testing.assert_array_equal(got_points, big_points)
        finally:
            arena.close()

    def test_flush_publish_attach_bitwise(self):
        rng = np.random.default_rng(3)
        rows = rng.integers(0, 100, size=55).astype(np.int64)
        queries = rng.uniform(0.0, 9.0, size=(13, 4))
        arena = ShmArena()
        try:
            spec = arena.publish_flush(rows, queries)
            got_rows, got_queries = attach_flush(spec)
            np.testing.assert_array_equal(got_rows, rows)
            np.testing.assert_array_equal(got_queries, queries)
            # Overwritten in place on the next flush (same capacity).
            spec2 = arena.publish_flush(rows[:5] + 1, queries[:3] + 0.5)
            assert spec2.name == spec.name
            got_rows2, got_queries2 = attach_flush(spec2)
            np.testing.assert_array_equal(got_rows2, rows[:5] + 1)
            np.testing.assert_array_equal(got_queries2, queries[:3] + 0.5)
        finally:
            arena.close()

    def test_close_idempotent_and_publish_after_close_raises(self):
        arena = ShmArena()
        arena.publish_cache(np.zeros((3, 2)), np.zeros(3))
        arena.close()
        arena.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            arena.publish_cache(np.zeros((3, 2)), np.zeros(3))

    def test_attach_unknown_segment_raises_structured(self):
        spec = CacheSpec(
            name="repro-no-such-segment", generation=999, rows=1, dim=1, capacity=64
        )
        with pytest.raises(ShmAttachError, match="cannot attach"):
            attach_cache(spec)

    def test_round_capacity_powers_of_two(self):
        assert shm._round_capacity(0) == 64
        assert shm._round_capacity(64) == 64
        assert shm._round_capacity(65) == 128
        assert shm._round_capacity(1000) == 1024


def _groups(rng, n_groups=8, sizes=(12, 16), m=3, n_pool=96, dim=4):
    points, values = _pool(rng, n_pool, dim)
    supports, queries_list = [], []
    for g in range(n_groups):
        size = sizes[g % len(sizes)]
        rows = rng.choice(n_pool, size=size, replace=False).astype(np.int64)
        supports.append(rows)
        queries_list.append(
            points[rows[0]][None, :] + rng.uniform(0.05, 0.45, size=(m, dim))
        )
    return points, values, supports, queries_list


def _flat(results):
    return [(r.estimate, r.variance) for group in results for r in group]


class TestShmSolvePath:
    @pytest.mark.parametrize("stacking", [False, True])
    def test_shm_grouped_bitwise_matches_serial(self, stacking):
        """The shm dispatch is a transport knob only: workers rebuild the
        exact ``points[rows]`` gathers, so every bit matches the serial
        reference (with stacking on or off)."""
        rng = np.random.default_rng(7)
        points, values, supports, queries_list = _groups(rng)
        groups = [
            (points[rows], values[rows], queries)
            for rows, queries in zip(supports, queries_list)
        ]
        reference = ordinary_kriging_grouped(
            groups, VARIOGRAM, n_jobs=1, stacking=stacking
        )
        arena = ShmArena()
        try:
            with ProcessPoolExecutor(max_workers=2) as pool:
                via_shm = ordinary_kriging_grouped_shm(
                    arena, points, values, supports, queries_list, VARIOGRAM,
                    n_jobs=2, executor=pool, stacking=stacking,
                )
        finally:
            arena.close()
        assert _flat(via_shm) == _flat(reference)

    def test_shm_single_worker_avoids_segments(self):
        """n_jobs=1 delegates to the serial path without touching the arena."""
        rng = np.random.default_rng(8)
        points, values, supports, queries_list = _groups(rng, n_groups=3)
        arena = ShmArena()
        try:
            results = ordinary_kriging_grouped_shm(
                arena, points, values, supports, queries_list, VARIOGRAM, n_jobs=1
            )
            assert arena._cache_seg is None  # nothing was published
        finally:
            arena.close()
        groups = [
            (points[rows], values[rows], queries)
            for rows, queries in zip(supports, queries_list)
        ]
        assert _flat(results) == _flat(
            ordinary_kriging_grouped(groups, VARIOGRAM, n_jobs=1)
        )

    def test_shm_length_mismatch_rejected(self):
        arena = ShmArena()
        try:
            with pytest.raises(ValueError, match="supports length"):
                ordinary_kriging_grouped_shm(
                    arena,
                    np.zeros((4, 2)),
                    np.zeros(4),
                    [np.array([0, 1])],
                    [],
                    VARIOGRAM,
                )
        finally:
            arena.close()


class TestEstimatorDegradation:
    def _simulate(self, config):
        c = np.asarray(config, dtype=float)
        return float(c @ np.resize(np.array([1.0, -2.0, 0.5]), c.size) - 6.0)

    def test_shm_true_unavailable_falls_back_with_one_warning(self, monkeypatch):
        """``shm=True`` where shared memory is missing: thread backend,
        exactly one warning per process."""
        monkeypatch.setattr(estimator_module, "shm_available", lambda: False)
        monkeypatch.setattr(estimator_module, "_SHM_WARNED", False)
        with pytest.warns(RuntimeWarning, match="shared_memory is unavailable"):
            est = KrigingEstimator(
                self._simulate, 3, backend="process", n_jobs=2, shm=True
            )
        assert est.backend == "thread"
        assert not est._shm_enabled
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # second construction: silent
            KrigingEstimator(self._simulate, 3, backend="process", n_jobs=2, shm=True)

    def test_attach_failure_disables_shm_and_answers_via_pickled(self, monkeypatch):
        """A worker-side ShmAttachError mid-flush: the flush still completes
        (pickled path), shm stays off for the estimator's lifetime, one
        warning is emitted."""

        def broken_shm(*args, **kwargs):
            raise ShmAttachError("cannot attach shared segment 'x': gone")

        monkeypatch.setattr(
            estimator_module, "ordinary_kriging_grouped_shm", broken_shm
        )
        rng = np.random.default_rng(9)
        pts = np.unique(rng.integers(0, 6, size=(60, 3)), axis=0).astype(float)
        with KrigingEstimator(
            self._simulate, 3, distance=4.0, n_jobs=2, backend="process", shm=True
        ) as est:
            assert est._shm_enabled
            with pytest.warns(RuntimeWarning, match="solve path disabled"):
                est.evaluate_batch(pts)
                out = est.evaluate_batch(pts[:20] + 0.25)
            assert not est._shm_enabled
            assert est._arena is None  # segments unlinked on disable
            assert all(o.interpolated for o in out)

            # Reference: the same replay with shm off is bit-identical.
            with KrigingEstimator(
                self._simulate, 3, distance=4.0, n_jobs=2,
                backend="process", shm=False,
            ) as twin:
                twin.evaluate_batch(pts)
                ref = twin.evaluate_batch(pts[:20] + 0.25)
            assert [o.value for o in out] == [o.value for o in ref]
            assert [o.variance for o in out] == [o.variance for o in ref]
