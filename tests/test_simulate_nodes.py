"""Unit tests for repro.fixedpoint.simulate (quantization nodes)."""

import numpy as np
import pytest

from repro.fixedpoint.qformat import QFormat
from repro.fixedpoint.simulate import FixedPointSimulator, QuantizationNode


class TestQuantizationNode:
    def test_format_for_word_length(self):
        node = QuantizationNode("acc", integer_bits=2)
        fmt = node.format_for(16)
        assert fmt == QFormat(integer_bits=2, frac_bits=13)

    def test_apply_quantizes(self):
        node = QuantizationNode("x", integer_bits=0)
        out = node.apply(np.array([0.3]), 4)  # Q0.3, step 0.125
        assert out[0] == pytest.approx(0.25)

    def test_unsigned_node(self):
        node = QuantizationNode("pix", integer_bits=0, signed=False)
        fmt = node.format_for(8)
        assert fmt.min_value == 0.0
        assert fmt.frac_bits == 8


class TestFixedPointSimulator:
    def _sim(self):
        return FixedPointSimulator(
            [QuantizationNode("mul", 0), QuantizationNode("acc", 2)]
        )

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            FixedPointSimulator([QuantizationNode("a", 0), QuantizationNode("a", 1)])

    def test_bind_and_lookup(self):
        sim = self._sim()
        sim.bind([8, 12])
        assert sim.word_length("mul") == 8
        assert sim.word_length("acc") == 12

    def test_bind_wrong_size_rejected(self):
        sim = self._sim()
        with pytest.raises(ValueError, match="expected 2"):
            sim.bind([8])

    def test_bind_nonpositive_rejected(self):
        sim = self._sim()
        with pytest.raises(ValueError, match=">= 1"):
            sim.bind([8, 0])

    def test_unbound_lookup_rejected(self):
        sim = self._sim()
        with pytest.raises(KeyError, match="no word-length bound"):
            sim.word_length("mul")

    def test_unknown_node_rejected(self):
        sim = self._sim()
        sim.bind([8, 8])
        with pytest.raises(KeyError, match="unknown quantization node"):
            sim.apply("nope", np.zeros(3))

    def test_apply_uses_bound_word_length(self):
        sim = self._sim()
        sim.bind([4, 16])
        out = sim.apply("mul", np.array([0.3]))
        assert out[0] == pytest.approx(0.25)  # Q0.3 grid

    def test_properties(self):
        sim = self._sim()
        assert sim.node_names == ["mul", "acc"]
        assert sim.num_variables == 2
