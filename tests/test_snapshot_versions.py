"""Snapshot format-version compatibility (:mod:`repro.service.session`).

Format v2 added the factor-cache section (warm-start restores).  The
compatibility contract: the current version round-trips the factor cache
byte for byte and replays with **zero** fresh factorizations; a version-1
snapshot restores cold *silently*; a corrupted factor section degrades to
a cold restore with a warning instead of failing the load; an unknown
version is rejected outright.
"""

import json
import warnings
import zipfile

import numpy as np
import pytest

from repro.core.estimator import KrigingEstimator
from repro.service.session import (
    SNAPSHOT_VERSION,
    load_snapshot,
    save_snapshot,
)

COEFFS = np.array([1.0, -2.0, 0.5, 0.25])


def _simulate(config):
    c = np.asarray(config, dtype=float)
    return float(c @ np.resize(COEFFS, c.size) - 6.0)


def _warm_session(tmp_path):
    """A snapshotted session whose factor cache is warm, plus its queries."""
    rng = np.random.default_rng(17)
    est = KrigingEstimator(_simulate, 3, distance=4.0, nn_min=1, variogram="linear")
    pts = np.unique(rng.integers(0, 6, size=(120, 3)), axis=0).astype(float)
    for p in pts:
        row = est.cache.add(p, _simulate(p))
        est.neighbor_index.insert(p, row)
    queries = pts[:12] + 0.25
    est.evaluate_batch(queries)
    assert dict(est.stats.factor.as_pairs())["fresh"] > 0
    path = save_snapshot(
        tmp_path / "warm",
        {
            "name": "versions",
            "simulator": {"kind": "linear", "num_variables": 3},
            "estimator": est.to_state(),
        },
    )
    return est, path, queries


def _fresh_delta(state, queries):
    est = KrigingEstimator.from_state(_simulate, state)
    before = dict(est.stats.factor.as_pairs())["fresh"]
    est.evaluate_batch(queries)
    return dict(est.stats.factor.as_pairs())["fresh"] - before


def _rewrite(src, dst, *, drop=(), patch_manifest=None):
    """Copy an .npz, dropping members and/or editing the JSON manifest."""
    with zipfile.ZipFile(src) as zin, zipfile.ZipFile(dst, "w") as zout:
        for info in zin.infolist():
            if info.filename.removesuffix(".npy") in drop:
                continue
            data = zin.read(info.filename)
            if info.filename == "manifest.npy" and patch_manifest is not None:
                # The manifest member is a raw uint8 .npy; its JSON payload
                # sits after the numpy header.
                header_end = data.index(b"\n") + 1
                manifest = json.loads(data[header_end:].decode())
                manifest = patch_manifest(manifest)
                payload = json.dumps(manifest).encode()
                arr = np.frombuffer(payload, dtype=np.uint8)
                import io

                buf = io.BytesIO()
                np.save(buf, arr)
                data = buf.getvalue()
            zout.writestr(info.filename, data)
    return dst


class TestCurrentVersion:
    def test_factor_cache_roundtrips_byte_for_byte(self, tmp_path):
        est, path, _ = _warm_session(tmp_path)
        source = est.to_state()["factor_entries"]
        restored = load_snapshot(path)["estimator"]["factor_entries"]
        assert restored is not None
        assert restored["version"] == source["version"]
        assert len(restored["entries"]) == len(source["entries"])
        for a, b in zip(source["entries"], restored["entries"]):
            assert a["shift"] == b["shift"]
            np.testing.assert_array_equal(a["rows"], b["rows"])
            np.testing.assert_array_equal(a["gamma"], b["gamma"])
            np.testing.assert_array_equal(a["chol"], b["chol"])

    def test_warm_restore_refactorizes_nothing(self, tmp_path):
        _, path, queries = _warm_session(tmp_path)
        state = load_snapshot(path)["estimator"]
        assert _fresh_delta(state, queries) == 0
        # Stripping the section reproduces the cold (v1) behaviour.
        assert _fresh_delta({**state, "factor_entries": None}, queries) > 0

    def test_two_restores_do_not_share_factors(self, tmp_path):
        """Entries are copied per restore: rank-1 updates in one twin must
        not leak into the other's factors."""
        _, path, queries = _warm_session(tmp_path)
        state = load_snapshot(path)["estimator"]
        twin_a = KrigingEstimator.from_state(_simulate, state)
        twin_b = KrigingEstimator.from_state(_simulate, state)
        twin_a.cache.add([9.0, 9.0, 9.0], _simulate([9.0, 9.0, 9.0]))
        twin_a.neighbor_index.insert(
            np.array([9.0, 9.0, 9.0]), len(twin_a.cache) - 1
        )
        out_a = twin_a.evaluate_batch(queries)
        out_b = twin_b.evaluate_batch(queries)
        del out_a
        # twin_b's factors are untouched by twin_a's updates: replaying the
        # original queries stays warm and bitwise-stable.
        ref = KrigingEstimator.from_state(_simulate, load_snapshot(path)["estimator"])
        out_ref = ref.evaluate_batch(queries)
        assert [o.value for o in out_b] == [o.value for o in out_ref]


class TestPreviousVersion:
    def test_v1_snapshot_restores_cold_silently(self, tmp_path):
        _, path, queries = _warm_session(tmp_path)
        factor_members = [
            name.removesuffix(".npy")
            for name in zipfile.ZipFile(path).namelist()
            if name.startswith("factor")
        ]
        assert factor_members  # the warm snapshot really has a section

        def to_v1(manifest):
            manifest["snapshot_version"] = 1
            manifest["estimator"].pop("factor_section", None)
            return manifest

        v1 = _rewrite(path, tmp_path / "v1.npz", drop=factor_members,
                      patch_manifest=to_v1)
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # silent: no deprecation theatre
            state = load_snapshot(v1)
        assert state["estimator"]["factor_entries"] is None
        assert _fresh_delta(state["estimator"], queries) > 0  # cold, but works

    def test_unknown_version_rejected(self, tmp_path):
        _, path, _ = _warm_session(tmp_path)

        def to_v99(manifest):
            manifest["snapshot_version"] = SNAPSHOT_VERSION + 97
            return manifest

        bad = _rewrite(path, tmp_path / "v99.npz", patch_manifest=to_v99)
        with pytest.raises(ValueError, match="unsupported snapshot version"):
            load_snapshot(bad)


class TestCorruption:
    def test_missing_factor_member_degrades_to_cold(self, tmp_path):
        _, path, queries = _warm_session(tmp_path)
        truncated = _rewrite(path, tmp_path / "trunc.npz", drop=["factor0_chol"])
        with pytest.warns(RuntimeWarning, match="corrupted factor-cache section"):
            state = load_snapshot(truncated)
        assert state["estimator"]["factor_entries"] is None
        assert _fresh_delta(state["estimator"], queries) > 0

    def test_shift_count_mismatch_degrades_to_cold(self, tmp_path):
        _, path, _ = _warm_session(tmp_path)

        def drop_a_shift(manifest):
            manifest["estimator"]["factor_section"]["shifts"].pop()
            return manifest

        bad = _rewrite(path, tmp_path / "shift.npz", patch_manifest=drop_a_shift)
        with pytest.warns(RuntimeWarning, match="corrupted factor-cache section"):
            state = load_snapshot(bad)
        assert state["estimator"]["factor_entries"] is None
