"""Unit tests for repro.core.universal (kriging with drift)."""

import numpy as np
import pytest

from repro.core.kriging import ordinary_kriging
from repro.core.models import GaussianVariogram, LinearVariogram, PowerVariogram
from repro.core.universal import (
    adaptive_linear_drift,
    linear_drift,
    quadratic_drift,
    universal_kriging,
)

# The piecewise-linear variogram h -> h is rank deficient under a linear
# drift (the rank guard then degrades to ordinary kriging); the drift tests
# use the strictly convex power model instead.
VG = PowerVariogram(scale=1.0, exponent=1.5)


class TestDriftBases:
    def test_linear_drift_shape(self):
        pts = np.zeros((5, 3))
        assert linear_drift(pts).shape == (5, 4)

    def test_linear_drift_values(self):
        pts = np.array([[2.0, 3.0]])
        np.testing.assert_allclose(linear_drift(pts), [[1.0, 2.0, 3.0]])

    def test_quadratic_drift_shape(self):
        pts = np.zeros((5, 3))
        assert quadratic_drift(pts).shape == (5, 7)

    def test_quadratic_drift_values(self):
        pts = np.array([[2.0, -3.0]])
        np.testing.assert_allclose(quadratic_drift(pts), [[1.0, 2.0, -3.0, 4.0, 9.0]])


class TestUniversalKriging:
    def test_exact_at_support(self, rng):
        pts = rng.integers(0, 10, size=(12, 2)).astype(float)
        pts = np.unique(pts, axis=0)
        vals = rng.normal(size=pts.shape[0])
        res = universal_kriging(pts, vals, pts[3], VG)
        assert res.estimate == pytest.approx(vals[3], abs=1e-6)

    def test_reproduces_affine_trend_exactly_in_extrapolation(self):
        """The decisive property vs ordinary kriging: affine fields are
        extrapolated exactly."""
        slope = np.array([2.0, -1.5])
        pts = np.array(
            [[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [2.0, 1.0], [1.0, 2.0]]
        )
        vals = pts @ slope + 7.0
        query = np.array([6.0, 6.0])  # far outside the support hull
        truth = float(query @ slope + 7.0)
        uk = universal_kriging(pts, vals, query, VG)
        ok = ordinary_kriging(pts, vals, query, VG)
        assert uk.estimate == pytest.approx(truth, abs=1e-6)
        assert abs(ok.estimate - truth) > 1.0  # ordinary kriging regresses

    def test_one_sided_line_extrapolates_slope(self):
        # The FIR phase-1 walk geometry: collinear one-sided support.
        pts = np.array([[10.0], [11.0], [12.0]])
        vals = np.array([-60.0, -66.0, -72.0])
        res = universal_kriging(pts, vals, np.array([9.0]), VG)
        assert res.estimate == pytest.approx(-54.0, abs=1e-6)

    def test_two_point_collinear_support_with_adaptive_drift(self):
        # Two support points and an adaptive drift: exact linear
        # extrapolation — the case ordinary kriging answers with the
        # nearest-neighbour value.
        pts = np.array([[11.0, 20.0], [12.0, 20.0]])
        vals = np.array([-66.0, -72.0])
        query = np.array([10.0, 20.0])
        res = universal_kriging(
            pts, vals, query, VG, drift=adaptive_linear_drift(pts)
        )
        assert res.estimate == pytest.approx(-60.0, abs=1e-6)

    def test_rank_guard_degrades_to_ordinary(self):
        # gamma(h) = h with a full linear drift is singular on this support;
        # the guard must hand the query to ordinary kriging (here: exact at
        # a support point regardless).
        pts = np.array([[0.0], [1.0], [2.0], [3.0]])
        vals = np.array([0.0, 1.0, 2.0, 3.0])
        res = universal_kriging(pts, vals, np.array([1.5]), LinearVariogram(1.0))
        assert res.estimate == pytest.approx(1.5, abs=1e-6)

    def test_weights_reproduce_drift_constraints(self, rng):
        pts = rng.integers(0, 8, size=(10, 3)).astype(float)
        pts = np.unique(pts, axis=0)
        vals = rng.normal(size=pts.shape[0])
        query = np.array([3.0, 4.0, 5.0])
        res = universal_kriging(pts, vals, query, VG)
        basis = linear_drift(pts)
        target = linear_drift(query[None, :])[0]
        np.testing.assert_allclose(res.weights @ basis, target, atol=1e-6)

    def test_variance_nonnegative(self, rng):
        pts = rng.integers(0, 8, size=(12, 2)).astype(float)
        pts = np.unique(pts, axis=0)
        vals = rng.normal(size=pts.shape[0])
        res = universal_kriging(pts, vals, np.array([3.5, 3.5]), VG)
        assert res.variance >= 0.0

    def test_gaussian_variogram_smooth_field(self, rng):
        vg = GaussianVariogram(sill=10.0, range_=20.0)
        slope = np.array([1.0, 2.0])
        pts = rng.integers(0, 8, size=(15, 2)).astype(float)
        pts = np.unique(pts, axis=0)
        vals = pts @ slope
        res = universal_kriging(pts, vals, np.array([10.0, 10.0]), vg)
        assert res.estimate == pytest.approx(30.0, abs=1e-4)

    def test_bad_drift_rejected(self):
        pts = np.zeros((3, 2))
        pts[1, 0] = 1.0
        pts[2, 1] = 1.0
        with pytest.raises(ValueError, match="drift basis"):
            universal_kriging(
                pts, np.zeros(3), np.array([5.0, 5.0]), VG, drift=lambda p: np.zeros(7)
            )

    def test_exact_hit_shortcut_before_drift(self):
        # A coincident query resolves without touching the drift at all.
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        vals = np.array([4.0, 5.0, 6.0])
        res = universal_kriging(
            pts, vals, np.array([0.0, 0.0]), VG, drift=lambda p: np.zeros(7)
        )
        assert res.estimate == 4.0
        assert res.variance == 0.0


class TestEstimatorIntegration:
    def test_estimator_universal_mode(self):
        from repro.core.estimator import KrigingEstimator

        coeffs = np.array([3.0, -2.0])

        def metric(c):
            return float(np.asarray(c, dtype=float) @ coeffs + 1.0)

        est = KrigingEstimator(
            metric, 2, distance=6, nn_min=1, interpolator="universal",
            variogram=PowerVariogram(1.0, 1.5),
        )
        rng = np.random.default_rng(0)
        errors = []
        for _ in range(50):
            config = rng.integers(0, 8, size=2)
            out = est.evaluate(config)
            if out.interpolated and not out.exact_hit and out.n_neighbors >= 4:
                errors.append(abs(out.value - metric(config)))
        assert errors
        # With a well-posed drift the affine field is interpolated exactly
        # whenever enough support exists.
        assert float(np.median(errors)) < 1e-6

    def test_estimator_rejects_unknown_interpolator(self):
        from repro.core.estimator import KrigingEstimator

        with pytest.raises(ValueError, match="interpolator"):
            KrigingEstimator(lambda c: 0.0, 2, interpolator="mystic")
