"""Unit tests for repro.core.variogram (paper Eq. 4)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.variogram import EmpiricalVariogram, empirical_semivariogram


class TestEquation4:
    def test_two_points_single_lag(self):
        # gamma(d) = (1 / 2|N(d)|) * sum (l_j - l_k)^2 with one pair: (4-0)^2/2 = 8.
        pts = np.array([[0, 0], [1, 1]])
        vals = np.array([0.0, 4.0])
        emp = empirical_semivariogram(pts, vals)
        assert emp.lags.tolist() == [2.0]
        assert emp.gammas[0] == pytest.approx(8.0)
        assert emp.counts[0] == 1

    def test_pair_grouping_by_exact_lag(self):
        pts = np.array([[0], [1], [2]])
        vals = np.array([0.0, 1.0, 4.0])
        emp = empirical_semivariogram(pts, vals)
        # lag 1: pairs (0,1): 0.5*1, (1,2): 0.5*9 -> mean 2.5; lag 2: 0.5*16 = 8.
        assert emp.lags.tolist() == [1.0, 2.0]
        assert emp.gammas[0] == pytest.approx(2.5)
        assert emp.gammas[1] == pytest.approx(8.0)
        assert emp.counts.tolist() == [2, 1]

    def test_constant_field_zero_variogram(self, rng):
        pts = rng.integers(0, 8, size=(15, 3))
        emp = empirical_semivariogram(pts, np.full(15, 7.0))
        np.testing.assert_allclose(emp.gammas, 0.0)

    def test_max_lag_filters_pairs(self):
        pts = np.array([[0], [1], [10]])
        vals = np.array([0.0, 1.0, 2.0])
        emp = empirical_semivariogram(pts, vals, max_lag=2)
        assert emp.lags.tolist() == [1.0]

    def test_coincident_points_ignored(self):
        pts = np.array([[0, 0], [0, 0], [1, 0]])
        vals = np.array([0.0, 0.5, 1.0])
        emp = empirical_semivariogram(pts, vals)
        assert 0.0 not in emp.lags

    def test_binning(self):
        pts = np.arange(10).reshape(-1, 1)
        vals = np.arange(10, dtype=float)
        emp = empirical_semivariogram(pts, vals, n_bins=3)
        assert emp.n_lags <= 3
        assert np.all(np.diff(emp.lags) > 0)

    def test_needs_two_points(self):
        with pytest.raises(ValueError, match="at least two"):
            empirical_semivariogram(np.array([[0, 0]]), np.array([1.0]))

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="incompatible"):
            empirical_semivariogram(np.zeros((3, 2)), np.zeros(4))


class TestLinearFieldTheory:
    def test_1d_linear_field_variogram_is_quadratic(self):
        # lambda(x) = a x  =>  gamma(h) = a^2 h^2 / 2 exactly.
        a = 3.0
        pts = np.arange(20).reshape(-1, 1)
        vals = a * np.arange(20, dtype=float)
        emp = empirical_semivariogram(pts, vals)
        for lag, gamma in zip(emp.lags, emp.gammas):
            assert gamma == pytest.approx(a * a * lag * lag / 2.0)


class TestEmpiricalVariogramCallable:
    def _emp(self):
        return EmpiricalVariogram(
            lags=np.array([1.0, 2.0, 4.0]),
            gammas=np.array([1.0, 3.0, 5.0]),
            counts=np.array([5, 4, 2]),
        )

    def test_zero_at_origin(self):
        assert self._emp()(0.0) == 0.0

    def test_exact_at_lags(self):
        emp = self._emp()
        assert emp(2.0) == pytest.approx(3.0)

    def test_interpolates_between_lags(self):
        emp = self._emp()
        assert emp(3.0) == pytest.approx(4.0)

    def test_constant_beyond_last_lag(self):
        emp = self._emp()
        assert emp(100.0) == pytest.approx(5.0)

    def test_vectorized(self):
        emp = self._emp()
        out = emp(np.array([0.0, 1.0, 3.0]))
        np.testing.assert_allclose(out, [0.0, 1.0, 4.0])

    def test_validation(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            EmpiricalVariogram(
                lags=np.array([2.0, 1.0]),
                gammas=np.array([1.0, 1.0]),
                counts=np.array([1, 1]),
            )
        with pytest.raises(ValueError, match="equal length"):
            EmpiricalVariogram(
                lags=np.array([1.0]),
                gammas=np.array([1.0, 2.0]),
                counts=np.array([1]),
            )


class TestProperties:
    @given(
        st.lists(
            st.floats(min_value=-100, max_value=100),
            min_size=3,
            max_size=12,
            unique=True,
        )
    )
    def test_gamma_nonnegative(self, values):
        pts = np.arange(len(values)).reshape(-1, 1)
        emp = empirical_semivariogram(pts, np.asarray(values))
        assert np.all(emp.gammas >= 0.0)

    @given(st.integers(min_value=2, max_value=10))
    def test_counts_sum_to_pair_count(self, n):
        pts = np.arange(n).reshape(-1, 1)
        vals = np.zeros(n)
        emp = empirical_semivariogram(pts, vals)
        assert int(np.sum(emp.counts)) == n * (n - 1) // 2
