"""Unit tests for repro.core.models (parametric variogram families)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.models import (
    ExponentialVariogram,
    GaussianVariogram,
    LinearVariogram,
    NuggetVariogram,
    PowerVariogram,
    SphericalVariogram,
)

ALL_MODELS = [
    LinearVariogram(slope=0.5),
    SphericalVariogram(sill=2.0, range_=5.0),
    ExponentialVariogram(sill=2.0, range_=5.0),
    GaussianVariogram(sill=2.0, range_=5.0),
    PowerVariogram(scale=0.3, exponent=1.5),
    NuggetVariogram(nugget_=1.0),
]

lags = st.floats(min_value=0.0, max_value=100.0)


class TestCommonProperties:
    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: type(m).__name__)
    def test_zero_at_origin(self, model):
        assert model(0.0) == 0.0

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: type(m).__name__)
    def test_nonnegative(self, model):
        h = np.linspace(0, 50, 101)
        assert np.all(np.asarray(model(h)) >= 0.0)

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: type(m).__name__)
    def test_monotone_nondecreasing(self, model):
        h = np.linspace(0, 50, 101)
        assert np.all(np.diff(np.asarray(model(h))) >= -1e-12)

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: type(m).__name__)
    def test_scalar_and_vector_agree(self, model):
        assert model(3.0) == pytest.approx(float(np.asarray(model(np.array([3.0])))[0]))

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: type(m).__name__)
    def test_negative_lag_rejected(self, model):
        with pytest.raises(ValueError, match="non-negative"):
            model(-1.0)


class TestBoundedModels:
    def test_spherical_reaches_sill_at_range(self):
        m = SphericalVariogram(sill=2.0, range_=5.0)
        assert m(5.0) == pytest.approx(2.0)
        assert m(50.0) == pytest.approx(2.0)

    def test_exponential_practical_range(self):
        m = ExponentialVariogram(sill=2.0, range_=5.0)
        assert m(5.0) == pytest.approx(2.0 * (1 - np.exp(-3.0)))

    def test_gaussian_smooth_origin(self):
        # Gaussian model is ~quadratic near the origin: gamma(h)/h -> 0.
        m = GaussianVariogram(sill=1.0, range_=10.0)
        assert m(0.01) / 0.01 < 0.01

    def test_nugget_included(self):
        m = SphericalVariogram(sill=1.0, range_=5.0, nugget_=0.5)
        assert m(0.0) == 0.0  # gamma(0) = 0 by definition
        assert m(1e-9) >= 0.5  # discontinuity at 0+
        assert m.nugget == 0.5


class TestParameterValidation:
    def test_linear_slope_positive(self):
        with pytest.raises(ValueError):
            LinearVariogram(slope=0.0)

    @pytest.mark.parametrize(
        "cls", [SphericalVariogram, ExponentialVariogram, GaussianVariogram]
    )
    def test_bounded_params_positive(self, cls):
        with pytest.raises(ValueError):
            cls(sill=0.0, range_=1.0)
        with pytest.raises(ValueError):
            cls(sill=1.0, range_=0.0)
        with pytest.raises(ValueError):
            cls(sill=1.0, range_=1.0, nugget_=-0.1)

    def test_power_exponent_range(self):
        with pytest.raises(ValueError):
            PowerVariogram(scale=1.0, exponent=2.0)
        with pytest.raises(ValueError):
            PowerVariogram(scale=1.0, exponent=0.0)

    def test_nugget_positive(self):
        with pytest.raises(ValueError):
            NuggetVariogram(nugget_=0.0)


class TestShapes:
    @given(lags)
    def test_linear_is_linear(self, h):
        m = LinearVariogram(slope=2.0)
        assert m(h) == pytest.approx(2.0 * h)

    @given(st.floats(min_value=0.1, max_value=30.0))
    def test_power_quadraticish_dominates_linear_far(self, h):
        quad = PowerVariogram(scale=1.0, exponent=1.9)
        assert quad(h) == pytest.approx(h**1.9)
