"""Unit tests for the HEVC motion-compensation benchmark (repro.video)."""

import numpy as np
import pytest

from repro.video.blocks import BlockWorkload, synthetic_frame
from repro.video.filters import HEVC_LUMA_FILTERS, N_TAPS, luma_filter
from repro.video.motion_comp import MotionCompensationBenchmark


@pytest.fixture(scope="module")
def mc():
    workload = BlockWorkload.generate(n_blocks=12, seed=3)
    return MotionCompensationBenchmark(workload=workload)


class TestFilters:
    def test_four_phases(self):
        assert set(HEVC_LUMA_FILTERS) == {0, 1, 2, 3}

    def test_unit_dc_gain(self):
        for phase, taps in HEVC_LUMA_FILTERS.items():
            assert np.sum(taps) == pytest.approx(1.0), f"phase {phase}"

    def test_phase0_is_identity(self):
        taps = luma_filter(0)
        assert taps[3] == 1.0
        assert np.count_nonzero(taps) == 1

    def test_half_pel_symmetric(self):
        taps = luma_filter(2)
        np.testing.assert_allclose(taps, taps[::-1])

    def test_quarter_and_three_quarter_mirrored(self):
        q1 = luma_filter(1)
        q3 = luma_filter(3)
        np.testing.assert_allclose(q1, q3[::-1])

    def test_standard_coefficients(self):
        np.testing.assert_allclose(
            luma_filter(2) * 64, [-1, 4, -11, 40, 40, -11, 4, -1]
        )

    def test_invalid_phase_rejected(self):
        with pytest.raises(ValueError):
            luma_filter(4)

    def test_returns_copy(self):
        taps = luma_filter(1)
        taps[0] = 99.0
        assert luma_filter(1)[0] != 99.0


class TestWorkload:
    def test_frame_in_range(self):
        frame = synthetic_frame(64, 64, seed=0)
        assert frame.min() >= 0.0
        assert frame.max() < 1.0

    def test_frame_too_small_rejected(self):
        with pytest.raises(ValueError):
            synthetic_frame(8, 64)

    def test_workload_shapes(self):
        wl = BlockWorkload.generate(n_blocks=10, seed=1)
        assert wl.positions.shape == (10, 2)
        assert wl.phases.shape == (10, 2)
        assert wl.n_blocks == 10

    def test_no_integer_motion_vectors(self):
        wl = BlockWorkload.generate(n_blocks=50, seed=2)
        assert np.all((wl.phases[:, 0] != 0) | (wl.phases[:, 1] != 0))

    def test_margins_respected(self):
        wl = BlockWorkload.generate(n_blocks=50, seed=4)
        assert np.all(wl.positions >= N_TAPS)

    def test_deterministic(self):
        a = BlockWorkload.generate(n_blocks=5, seed=9)
        b = BlockWorkload.generate(n_blocks=5, seed=9)
        np.testing.assert_array_equal(a.positions, b.positions)
        np.testing.assert_array_equal(a.frame, b.frame)


class TestBenchmark:
    def test_nv_is_23(self, mc):
        assert mc.NUM_VARIABLES == 23
        assert len(mc.VARIABLE_NAMES) == 23

    def test_reference_shape(self, mc):
        assert mc.reference().shape == (12, 8, 8)

    def test_high_precision_converges(self, mc):
        out = mc.simulate([26] * 23)
        assert np.max(np.abs(out - mc.reference())) < 1e-4

    def test_monotone_improvement(self, mc):
        assert mc.noise_power_db([8] * 23) > mc.noise_power_db([14] * 23) + 20

    def test_separable_interpolation_against_direct(self, mc):
        """Reference output equals direct 2-D separable filtering."""
        wl = mc.workload
        idx = 0
        r, c = wl.positions[idx]
        pv, ph = int(wl.phases[idx, 0]), int(wl.phases[idx, 1])
        h = HEVC_LUMA_FILTERS[ph]
        v = HEVC_LUMA_FILTERS[pv]
        expected = np.empty((8, 8))
        for i in range(8):
            for j in range(8):
                patch = wl.frame[r + i - 3 : r + i + 5, c + j - 3 : c + j + 5]
                expected[i, j] = v @ (patch @ h)
        np.testing.assert_allclose(
            mc.reference()[idx], np.clip(expected, 0.0, 1.0), atol=1e-10
        )

    def test_wrong_length_rejected(self, mc):
        with pytest.raises(ValueError, match="expected 23"):
            mc.simulate([8] * 22)

    def test_output_in_pixel_range(self, mc):
        out = mc.simulate([10] * 23)
        assert out.min() >= 0.0
        assert out.max() <= 1.0

    def test_deterministic(self, mc):
        w = list(range(8, 31))
        np.testing.assert_array_equal(mc.simulate(w), mc.simulate(w))
